"""Hierarchical timer wheel: batched scheduling for recurring callbacks.

The Fabric model is fundamentally periodic — membership heart-beats, state
info gossip, recovery checks, background metadata chatter — and with the
one-heap-entry-per-firing :class:`~repro.simulation.timers.PeriodicTimer`
every tick of every timer is its own simulator event. At paper scale that
is thousands of heap operations per simulated second spent on timers whose
callbacks are trivial.

The :class:`TimerWheel` replaces that pattern with slot batching: simulated
time is divided into fixed ticks (default 1/20 s) and every recurring
callback due within the same tick lands in the same *slot*. One engine
event fires per occupied slot, regardless of how many timers share it, so
the event count for N same-period timers drops from N per period to (at
most) one per occupied tick.

Structure
---------

The wheel is hierarchical in the style of kernel timer wheels:

* **level 0** is a ring of ``ring_ticks`` buckets covering the next
  ``ring_ticks / ticks_per_second`` seconds at tick granularity; timers due
  inside the window are bucketed directly and fire from their slot;
* **level 1** is a sparse overflow map keyed by ring rotation; timers due
  beyond the window park there and cascade into the ring when their
  rotation's window opens (one cascade event per armed rotation).

All protocol periods (0.25-10 s) fit the default 25.6 s window, so the
overflow level is a correctness path for long phases and is exercised
directly by the tests with a deliberately tiny ring.

Semantics and determinism
-------------------------

Firing times are quantized *up* to the tick grid: a timer registered with
first-fire time ``t`` fires at the first slot boundary ``>= t``, and then
every ``period`` seconds re-quantized from the slot it fired in. Schedules
whose phases and periods are multiples of the tick reproduce the naive
:class:`PeriodicTimer` firing times exactly (slot times are computed as
``index / ticks_per_second`` with correctly rounded division, so grid
times are bit-equal to the literals callers wrote); off-grid schedules are
delayed by less than one tick per firing. The property suite in
``tests/property/test_timerwheel.py`` asserts exact (time, callback)
sequence equivalence against the heap path on grid-aligned schedules,
including cancellation and re-arming mid-run.

Within a slot, callbacks run in *arming order* — the chronological order in
which the registrations or re-arms happened — which is exactly the
``(time, seq)`` order the naive heap produces for tick-aligned schedules.
Entries carry a monotone arming sequence number and slots sort by it before
firing, so cascaded (level 1) entries interleave correctly with directly
bucketed ones.

Cancellation is O(1) and touches no heap entry: :meth:`WheelTimer.stop`
sets a flag and the slot skips the corpse when (and if) it fires. A crash
fault stopping a peer's every periodic component therefore cancels wheel
registrations, not N pending heap events — the engine's lazy-cancel and
compaction machinery is reserved for genuine one-shot events.
"""

from __future__ import annotations

from math import ceil
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simulation.engine import SimulationError, Simulator

DEFAULT_TICKS_PER_SECOND = 20
DEFAULT_RING_TICKS = 512


class WheelTimer:
    """Handle for one recurring registration on a :class:`TimerWheel`.

    API-compatible with :class:`~repro.simulation.timers.PeriodicTimer`
    (``ticks``, ``running``, ``period``, ``stop``, ``reschedule``) so
    processes can hold either interchangeably.
    """

    __slots__ = ("_wheel", "_period", "_callback", "_jitter", "_stopped", "_ticks")

    def __init__(
        self,
        wheel: "TimerWheel",
        period: float,
        callback: Callable[[], Any],
        jitter: Optional[Callable[[], float]] = None,
    ) -> None:
        self._wheel = wheel
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._stopped = False
        self._ticks = 0

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    @property
    def running(self) -> bool:
        """True until :meth:`stop` is called."""
        return not self._stopped

    @property
    def period(self) -> float:
        return self._period

    def stop(self) -> None:
        """Stop the timer: O(1), no heap entry is touched.

        The slot the timer sits in fires regardless (it may be shared) and
        skips stopped entries; the registration is dropped there.
        """
        if not self._stopped:
            self._stopped = True
            self._wheel._live -= 1

    def reschedule(self, period: float) -> None:
        """Change the period; takes effect from the next firing onwards.

        Rejects periods the wheel cannot carry without rate distortion
        (sub-tick or off the tick grid) — callers needing those cadences
        must use a naive :class:`PeriodicTimer` instead, as the process
        layer does at registration time.
        """
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        if not self._wheel.supports_period(period):
            raise SimulationError(
                f"period {period} is not a whole number of wheel ticks "
                f"(tick={self._wheel.tick}); use a PeriodicTimer for off-grid rates"
            )
        self._period = period

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "stopped" if self._stopped else "running"
        return f"<WheelTimer period={self._period} ticks={self._ticks} {state}>"


class TimerWheel:
    """Two-level (ring + overflow) timer wheel over a :class:`Simulator`.

    Args:
        sim: the simulator to fire slots on.
        ticks_per_second: slot granularity; slot times are exact multiples
            of ``1 / ticks_per_second`` computed by division, so an integer
            ratio (20 -> 50 ms) keeps grid times bit-equal to literals.
        ring_ticks: level-0 window length in ticks; timers due further out
            park in the level-1 overflow and cascade in later.
    """

    def __init__(
        self,
        sim: Simulator,
        ticks_per_second: int = DEFAULT_TICKS_PER_SECOND,
        ring_ticks: int = DEFAULT_RING_TICKS,
    ) -> None:
        if ticks_per_second < 1:
            raise SimulationError(
                f"ticks_per_second must be a positive integer, got {ticks_per_second}"
            )
        if ring_ticks < 2:
            raise SimulationError(f"ring_ticks must be >= 2, got {ring_ticks}")
        self._sim = sim
        self._tps = ticks_per_second
        self._tick = 1.0 / ticks_per_second
        self._ring_ticks = ring_ticks
        # Level 0: ring of buckets, position = slot index % ring_ticks. A
        # bucket is a list of (arming_seq, timer); None when empty.
        self._ring: List[Optional[List[Tuple[int, WheelTimer]]]] = [None] * ring_ticks
        # Level 1: rotation -> [(slot_index, arming_seq, timer)].
        self._far: Dict[int, List[Tuple[int, int, WheelTimer]]] = {}
        self._armed_rotations: set = set()
        self._armed_slots: set = set()
        self._fired_through = -1  # highest slot index already fired
        self._arm_seq = 0
        self._live = 0
        # Instrumentation: engine events consumed by the wheel.
        self.slot_events = 0
        self.cascade_events = 0

    # ----- public API -----------------------------------------------------

    @property
    def tick(self) -> float:
        """Slot granularity in seconds."""
        return self._tick

    @property
    def live_timers(self) -> int:
        """Registrations that are still running."""
        return self._live

    def every(
        self,
        period: float,
        callback: Callable[[], Any],
        initial_delay: Optional[float] = None,
        jitter: Optional[Callable[[], float]] = None,
    ) -> WheelTimer:
        """Register a recurring callback; mirrors :class:`PeriodicTimer`.

        Args:
            period: seconds between firings; must be positive. Periods
                shorter than one tick would alias to the tick — callers
                wanting sub-tick cadence (high-rate clients) should use the
                naive timer instead (see :meth:`supports_period`).
            callback: invoked with no arguments at every firing.
            initial_delay: delay before the first firing (default: one
                period). Quantized up to the next slot boundary.
            jitter: optional callable returning an additive offset applied
                independently to every firing before quantization.
        """
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        if initial_delay is not None and initial_delay < 0:
            raise SimulationError(f"initial delay must be >= 0, got {initial_delay}")
        timer = WheelTimer(self, period, callback, jitter)
        self._live += 1
        first = period if initial_delay is None else initial_delay
        if jitter is not None:
            first = max(0.0, first + jitter())
        self._insert(timer, self._sim.now + first)
        return timer

    def supports_period(self, period: float) -> bool:
        """Whether ``period`` can ride the wheel without rate distortion.

        Two classes of period are refused, and the process layer falls back
        to the naive per-event timer for them:

        * sub-tick periods, which would alias to the tick;
        * periods that are not a whole number of ticks — each firing
          re-quantizes *up* from its slot, so an off-grid period would be
          stretched toward the next boundary every cycle (0.26 s would
          effectively become 0.30 s), silently lowering calibrated rates.

        Grid-multiple periods re-quantize stably: the epsilon in
        :meth:`_slot_for` absorbs accumulated float dust, so the effective
        period is exact.
        """
        if period < self._tick:
            return False
        ticks = round(period * self._tps)
        return ticks >= 1 and abs(period - ticks / self._tps) <= 1e-9 * period

    # ----- internals ------------------------------------------------------

    def _slot_for(self, time: float) -> int:
        """First slot index whose boundary is >= ``time``.

        The epsilon absorbs float dust from summed periods (e.g.
        0.15 + 0.15 = 0.30000000000000004) so accumulated grid-aligned
        schedules stay on their intended slot.
        """
        scaled = time * self._tps
        slot = ceil(scaled - 1e-9 * (abs(scaled) + 1.0))
        if slot <= self._fired_through:
            # The boundary already fired (registration from inside its own
            # slot, or a zero delay at a fired boundary): defer one tick.
            slot = self._fired_through + 1
        return slot

    def _insert(self, timer: WheelTimer, time: float) -> Optional[list]:
        """Bucket ``timer`` for its next firing.

        Returns the ring bucket the timer landed in (for the re-arm memo
        in :meth:`_fire_slot`), or None when it parked in the overflow.
        """
        slot = self._slot_for(time)
        seq = self._arm_seq
        self._arm_seq = seq + 1
        # The ring window starts at the first boundary that can still fire.
        # ``_fired_through`` alone goes stale when the wheel idles (every
        # timer stopped, clock advanced by other events): anchoring the
        # base at the current time keeps near registrations in the ring and
        # keeps cascade times in the future.
        base = self._fired_through + 1
        scaled_now = self._sim._now * self._tps
        now_slot = ceil(scaled_now - 1e-9 * (abs(scaled_now) + 1.0))
        if now_slot > base:
            base = now_slot
        if slot < base + self._ring_ticks:
            position = slot % self._ring_ticks
            bucket = self._ring[position]
            if bucket is None:
                bucket = self._ring[position] = [(seq, timer)]
            else:
                bucket.append((seq, timer))
            if slot not in self._armed_slots:
                self._armed_slots.add(slot)
                self._arm_slot(slot)
            return bucket
        else:
            rotation = slot // self._ring_ticks
            entries = self._far.get(rotation)
            if entries is None:
                self._far[rotation] = [(slot, seq, timer)]
            else:
                entries.append((slot, seq, timer))
            if rotation not in self._armed_rotations:
                self._armed_rotations.add(rotation)
                # The cascade runs half a tick before the rotation's first
                # boundary so cascaded entries are bucketed (and their
                # slots armed) before any direct slot event of the same
                # rotation can fire.
                cascade_at = (rotation * self._ring_ticks - 0.5) / self._tps
                now = self._sim._now
                if cascade_at < now:
                    cascade_at = now
                self._sim.schedule_call(cascade_at, self._cascade, (rotation,))
            return None

    def _arm_slot(self, slot: int) -> None:
        # The clock can sit a hair *past* the boundary when _slot_for's
        # epsilon mapped a dust-contaminated time back onto it (e.g. a
        # registration from a callback at B + 1e-13); firing "now" instead
        # of raising keeps the slot time semantics (slot/tps) intact.
        fire_at = slot / self._tps
        now = self._sim._now
        if fire_at < now:
            fire_at = now
        self._sim.schedule_call(fire_at, self._fire_slot, (slot,))

    def _cascade(self, rotation: int) -> None:
        """Move one overflow rotation into the ring (level 1 -> level 0)."""
        self._armed_rotations.discard(rotation)
        entries = self._far.pop(rotation, None)
        self.cascade_events += 1
        if not entries:
            return
        ring = self._ring
        ring_ticks = self._ring_ticks
        for slot, seq, timer in entries:
            if timer._stopped:
                continue
            position = slot % ring_ticks
            bucket = ring[position]
            if bucket is None:
                ring[position] = [(seq, timer)]
            else:
                bucket.append((seq, timer))
            if slot not in self._armed_slots:
                self._armed_slots.add(slot)
                self._arm_slot(slot)

    def _fire_slot(self, slot: int) -> None:
        self._armed_slots.discard(slot)
        self._fired_through = slot
        self.slot_events += 1
        position = slot % self._ring_ticks
        bucket = self._ring[position]
        if bucket is None:
            return
        self._ring[position] = None
        if len(bucket) > 1:
            # Arming order == the (time, seq) order of the naive heap for
            # tick-aligned schedules; cascaded entries may have appended
            # out of order relative to direct ones.
            bucket.sort()
        slot_time = slot / self._tps
        # Re-arm memo: every non-jittered timer of the same period re-arms
        # at the same ``slot_time + period``, i.e. into the same bucket.
        # Computing the target slot once per period (instead of once per
        # timer) skips the _slot_for math for the whole herd of same-period
        # emitters sharing a slot, while assigning arming sequence numbers
        # in exactly the order the per-timer path would.
        memo_period = -1.0
        memo_bucket: Optional[list] = None
        for seq, timer in bucket:
            if timer._stopped:
                continue
            timer._ticks += 1
            timer._callback()
            if timer._stopped:
                continue
            period = timer._period
            if timer._jitter is None:
                if period == memo_period and memo_bucket is not None:
                    arm_seq = self._arm_seq
                    self._arm_seq = arm_seq + 1
                    memo_bucket.append((arm_seq, timer))
                    continue
                memo_bucket = self._insert(timer, slot_time + period)
                memo_period = period
                continue
            self._insert(timer, max(slot_time, slot_time + period + timer._jitter()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TimerWheel tick={self._tick} live={self._live} "
            f"armed_slots={len(self._armed_slots)} far_rotations={len(self._far)}>"
        )
