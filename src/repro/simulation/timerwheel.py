"""Hierarchical timer wheel (re-export shim): batched recurring callbacks.

The :class:`TimerWheel` replaces the one-heap-entry-per-firing
:class:`~repro.simulation.timers.PeriodicTimer` pattern with slot
batching: simulated time is divided into fixed ticks (default 1/20 s) and
every recurring callback due within the same tick lands in the same slot,
so one engine event fires per occupied slot regardless of how many timers
share it. The wheel is hierarchical in the style of kernel timer wheels: a
ring of tick-granular buckets plus a sparse overflow map that cascades in
rotation by rotation.

The implementation lives in :mod:`repro.simulation._core` (pure/compiled
twins, same module as the :class:`~repro.simulation.engine.Simulator` it
fires on); this module re-exports whichever twin is active. See the
``_core`` package docstring for selection and ``_pure.py`` for the firing
semantics (quantize-up grid, arming-order slots, re-arm memo) and their
determinism guarantees.
"""

from repro.simulation._core import (
    DEFAULT_RING_TICKS,
    DEFAULT_TICKS_PER_SECOND,
    TimerWheel,
    WheelTimer,
)

__all__ = [
    "DEFAULT_RING_TICKS",
    "DEFAULT_TICKS_PER_SECOND",
    "TimerWheel",
    "WheelTimer",
]
