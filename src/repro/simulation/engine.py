"""Deterministic discrete-event simulation engine.

The :class:`Simulator` is a classic heap-based event loop. Events are
callbacks scheduled at absolute simulated times. The engine knows nothing
about networks or blockchains; those are layered on top in :mod:`repro.net`
and :mod:`repro.fabric`.

Heap layout
-----------

The heap stores plain five-element lists rather than handle objects::

    [time, seq, callback, args, handle]

``heapq`` then compares entries with C-level list comparison: ``time``
first, then the monotonically increasing ``seq``, which is unique, so the
comparison never reaches the callback. This removes the per-comparison
Python ``__lt__`` dispatch that dominated the old object heap (hundreds of
thousands of calls per simulated second at paper scale).

Cancellation is lazy and in-place: cancelling sets ``entry[2]`` (the
callback) to ``None``; the entry stays in the heap and is discarded when it
surfaces. Executed and discarded entries are recycled through a bounded
free list, so steady-state scheduling allocates no new lists. When lazily
cancelled entries exceed half the heap (mass timer cancellation, e.g. a
crash fault stopping every periodic component), the heap is compacted in
one pass to bound memory in long runs.

``schedule``/``schedule_at`` return an :class:`EventHandle` wrapper for
callers that may cancel; the internal :meth:`Simulator.schedule_call` fast
path skips the wrapper allocation entirely and is what the network layer
uses for its per-message events.

Determinism contract
--------------------

Reproducibility is bit-for-bit: with a fixed seed, two runs execute the
exact same events in the exact same order at the exact same times, and all
derived metrics (latency samples, byte counts) are equal as floats. Ties on
the event time are broken by the scheduling sequence number. Any refactor
of this module must preserve (a) the ``(time, seq)`` ordering, (b) the
assignment of sequence numbers in scheduling order, and (c) the relative
order of callback execution and clock advancement. The checker in
:mod:`repro.perf.regression` asserts this contract against committed golden
metrics.
"""

from __future__ import annotations

from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from typing import Any, Callable, List, Optional

_INF = float("inf")

# Heap entry slots: [time, seq, callback, args, handle]. ``callback is
# None`` marks a lazily cancelled entry.
_ENTRY_POOL_MAX = 4096
# Compact when stale (cancelled-in-heap) entries pass both thresholds.
_COMPACT_MIN_STALE = 64


class SimulationError(RuntimeError):
    """Raised on invalid scheduler usage (e.g. scheduling in the past)."""


class EventHandle:
    """Handle for a scheduled event, usable to cancel it.

    Cancellation is lazy: the entry stays in the heap but is skipped when it
    surfaces. ``handle.cancelled`` and ``handle.executed`` expose the state.
    """

    __slots__ = ("time", "seq", "_sim", "_entry", "_cancelled", "_fired")

    def __init__(self, sim: "Simulator", entry: list) -> None:
        self.time = entry[0]
        self.seq = entry[1]
        self._sim = sim
        self._entry = entry
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def executed(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not self._cancelled and not self._fired

    def cancel(self) -> None:
        """Cancel the event. Cancelling an executed event is a no-op."""
        if self._fired or self._cancelled:
            return
        self._cancelled = True
        entry = self._entry
        self._entry = None
        entry[2] = None
        entry[3] = None
        entry[4] = None
        self._sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("done" if self._fired else "pending")
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Heap-based deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, callback, arg1, arg2)
        sim.run(until=100.0)

    All times are in simulated seconds. The simulator starts at time 0.
    """

    __slots__ = (
        "_now",
        "_seq",
        "_heap",
        "_running",
        "_events_executed",
        "_live",
        "_stale",
        "_pool",
        "_peak_heap",
        "_wheel",
        "use_timer_wheel",
    )

    def __init__(self, use_timer_wheel: bool = True) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[list] = []
        self._running = False
        self._events_executed = 0
        self._live = 0  # scheduled minus cancelled minus executed: O(1)
        self._stale = 0  # lazily cancelled entries still in the heap
        self._pool: List[list] = []
        self._peak_heap = 0
        self._wheel = None
        # Recurring timers batch into shared wheel slots when True (the
        # process layer consults this); False forces the naive
        # one-event-per-tick PeriodicTimer path — kept selectable so the
        # perf harness can measure the event-count reduction.
        self.use_timer_wheel = use_timer_wheel

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live queued events, excluding lazily cancelled ones.

        Maintained as an O(1) counter; the old implementation scanned the
        whole heap.
        """
        return self._live

    @property
    def peak_heap_size(self) -> int:
        """Largest heap length observed (perf instrumentation)."""
        return self._peak_heap

    @property
    def wheel(self):
        """The simulator's shared :class:`TimerWheel`, created on demand.

        All recurring timers of a simulation share one wheel so that
        same-tick firings across processes coalesce into single events.
        """
        if self._wheel is None:
            from repro.simulation.timerwheel import TimerWheel  # cycle guard

            self._wheel = TimerWheel(self)
        return self._wheel

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be finite and non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        entry = self._push(time, callback, args)
        handle = EventHandle(self, entry)
        entry[4] = handle
        return handle

    def schedule_call(self, time: float, callback: Callable[..., Any], args: tuple = ()) -> None:
        """Fast-path schedule without an :class:`EventHandle`.

        For hot callers that never cancel (the network layer schedules two
        to three events per message); skips the handle allocation. The body
        duplicates :meth:`_push` to save a call frame per event.
        """
        if not (self._now <= time < _INF):
            self._reject_time(time)
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = self._seq
            entry[2] = callback
            entry[3] = args
            entry[4] = None
        else:
            entry = [time, self._seq, callback, args, None]
        self._seq += 1
        heap = self._heap
        _heappush(heap, entry)
        self._live += 1
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def schedule_records(self, callback: Callable[..., Any], records: List[list]) -> None:
        """Batch fast path: schedule ``callback(*rec)`` at ``rec[0]`` for
        each record in ``records``.

        The record list itself is the event's argument vector — the run
        loop unpacks it with ``callback(*rec)`` — so a caller that makes
        the record's last slot the record itself can reclaim it into a
        free list inside the callback. This is what the network multicast
        path uses for its pooled slot-delivery records: one call frame
        schedules a whole fanout, sequence numbers are assigned in list
        order (consecutively, which the multicast tie-grouping proof
        relies on), and steady-state dissemination allocates neither heap
        entries (engine free list) nor argument tuples (caller free list)
        per recipient.
        """
        now = self._now
        seq = self._seq
        pool = self._pool
        heap = self._heap
        heappush = _heappush
        for rec in records:
            time = rec[0]
            if not (now <= time < _INF):
                # Repair the counters consumed so far before raising so a
                # rejected record cannot corrupt the live count.
                self._live += seq - self._seq
                self._seq = seq
                self._reject_time(time)
            if pool:
                entry = pool.pop()
                entry[0] = time
                entry[1] = seq
                entry[2] = callback
                entry[3] = rec
                entry[4] = None
            else:
                entry = [time, seq, callback, rec, None]
            seq += 1
            heappush(heap, entry)
        self._live += seq - self._seq
        self._seq = seq
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def _push(self, time: float, callback: Callable[..., Any], args: tuple) -> list:
        # ``not (now <= time < inf)`` is a single guard catching NaN
        # (comparisons are False), +/-inf and past times at once.
        if not (self._now <= time < _INF):
            self._reject_time(time)
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = self._seq
            entry[2] = callback
            entry[3] = args
            entry[4] = None
        else:
            entry = [time, self._seq, callback, args, None]
        self._seq += 1
        heap = self._heap
        _heappush(heap, entry)
        self._live += 1
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)
        return entry

    def _reject_time(self, time: float) -> None:
        if time != time or time == _INF:
            raise SimulationError(f"invalid event time: {time}")
        raise SimulationError(
            f"cannot schedule at t={time} before current time t={self._now}"
        )

    def _note_cancel(self) -> None:
        self._live -= 1
        self._stale += 1
        heap_len = len(self._heap)
        if self._stale > _COMPACT_MIN_STALE and self._stale * 2 >= heap_len:
            self._compact()

    def _compact(self) -> None:
        """Drop lazily cancelled entries and re-heapify in one pass.

        Bounds memory when timers are cancelled en masse (crash faults in
        long recovery/background runs) instead of letting dead entries
        accumulate until their scheduled times.
        """
        pool = self._pool
        live_entries = []
        for entry in self._heap:
            if entry[2] is not None:
                live_entries.append(entry)
            elif len(pool) < _ENTRY_POOL_MAX:
                pool.append(entry)
        _heapify(live_entries)
        self._heap = live_entries
        self._stale = 0

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: stop once the next event would fire strictly after this
                time; the clock is then advanced to ``until``. ``None`` runs
                until the queue drains.
            max_events: safety valve; raise :class:`SimulationError` if more
                than this many events execute.

        Returns:
            The simulated time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # Executed-event accounting is batched into locals and flushed in
        # the ``finally`` block: one attribute read-modify-write per run()
        # instead of two per event. ``_live``/``_events_executed`` are
        # therefore only exact while the loop is not executing a callback,
        # which is when anyone queries them.
        executed = 0
        heappop = _heappop
        pool = self._pool
        heap = self._heap
        # One comparison per event instead of two None tests: absent
        # bounds become sentinels no event time / count can exceed.
        limit = _INF if until is None else until
        event_budget = _INF if max_events is None else max_events
        try:
            while heap:
                entry = heap[0]
                callback = entry[2]
                if callback is None:
                    heappop(heap)
                    self._stale -= 1
                    if len(pool) < _ENTRY_POOL_MAX:
                        pool.append(entry)
                    continue
                event_time = entry[0]
                if event_time > limit:
                    break
                heappop(heap)
                self._now = event_time
                args = entry[3]
                handle = entry[4]
                if handle is not None:
                    handle._fired = True
                    handle._entry = None
                entry[2] = None
                entry[3] = None
                entry[4] = None
                if len(pool) < _ENTRY_POOL_MAX:
                    pool.append(entry)
                executed += 1
                callback(*args)
                # _compact() (reachable only through a cancel inside the
                # callback) swaps the heap list object; re-bind after each
                # callback, the only place the swap can happen.
                heap = self._heap
                if executed >= event_budget:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible runaway simulation"
                    )
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._events_executed += executed
            self._live -= executed
            self._running = False

    def run_until_idle(self, max_time: Optional[float] = None) -> float:
        """Run until the queue is empty or ``max_time`` is reached."""
        return self.run(until=max_time)

    def run_window(self, end: float) -> float:
        """Execute every event with time **strictly below** ``end``, then
        advance the clock to exactly ``end``.

        This is the conservative-window hook of the process-sharded
        executor (:mod:`repro.simulation.sharded`): a shard runs the
        half-open window ``[now, end)``, leaving events at exactly ``end``
        pending, so that cross-shard records injected at the barrier —
        whose times are ``>= end`` by the lookahead guarantee — can still
        be scheduled (``now`` never passes them) and order among the
        window-edge events by scheduling sequence. Contrast :meth:`run`,
        whose ``until`` bound is inclusive.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if end < self._now:
            raise SimulationError(
                f"cannot run a window ending at t={end} before current time t={self._now}"
            )
        self._running = True
        executed = 0
        heappop = _heappop
        pool = self._pool
        heap = self._heap
        try:
            while heap:
                entry = heap[0]
                callback = entry[2]
                if callback is None:
                    heappop(heap)
                    self._stale -= 1
                    if len(pool) < _ENTRY_POOL_MAX:
                        pool.append(entry)
                    continue
                event_time = entry[0]
                if event_time >= end:
                    break
                heappop(heap)
                self._now = event_time
                args = entry[3]
                handle = entry[4]
                if handle is not None:
                    handle._fired = True
                    handle._entry = None
                entry[2] = None
                entry[3] = None
                entry[4] = None
                if len(pool) < _ENTRY_POOL_MAX:
                    pool.append(entry)
                executed += 1
                callback(*args)
                heap = self._heap  # _compact() may swap the list object
            self._now = end
            return self._now
        finally:
            self._events_executed += executed
            self._live -= executed
            self._running = False

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._now = 0.0
        self._seq = 0
        self._heap.clear()
        self._pool.clear()
        self._events_executed = 0
        self._live = 0
        self._stale = 0
        self._peak_heap = 0
        self._wheel = None  # wheel state references dropped heap events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6f} pending={self._live}>"
