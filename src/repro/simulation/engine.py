"""Deterministic discrete-event simulation engine (re-export shim).

The :class:`Simulator` is a classic heap-based event loop. Events are
callbacks scheduled at absolute simulated times. The engine knows nothing
about networks or blockchains; those are layered on top in :mod:`repro.net`
and :mod:`repro.fabric`.

The implementation lives in :mod:`repro.simulation._core` as a pair of
twins sharing one source text — ``_pure.py`` (always available) and the
opt-in mypyc extension ``_compiled`` — selected at import time by the
``REPRO_ENGINE`` environment variable. This module re-exports whichever
twin is active so all historical imports keep working; see the ``_core``
package docstring for the selection rules and ``_pure.py`` for the heap
layout and the bit-for-bit determinism contract.
"""

from repro.simulation._core import (
    _COMPACT_MIN_STALE,
    _ENTRY_POOL_MAX,
    EventHandle,
    SimulationError,
    Simulator,
)

__all__ = [
    "EventHandle",
    "SimulationError",
    "Simulator",
    "_COMPACT_MIN_STALE",
    "_ENTRY_POOL_MAX",
]
