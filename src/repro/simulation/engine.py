"""Deterministic discrete-event simulation engine.

The :class:`Simulator` is a classic heap-based event loop. Events are
callbacks scheduled at absolute simulated times. Determinism matters for
reproducibility: ties on the event time are broken by a monotonically
increasing sequence number, so two runs with the same seed replay the exact
same event order.

The engine knows nothing about networks or blockchains; those are layered on
top in :mod:`repro.net` and :mod:`repro.fabric`.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised on invalid scheduler usage (e.g. scheduling in the past)."""


class EventHandle:
    """Handle for a scheduled event, usable to cancel it.

    Cancellation is lazy: the entry stays in the heap but is skipped when it
    surfaces. ``handle.cancelled`` and ``handle.executed`` expose the state.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "executed")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.executed = False

    def cancel(self) -> None:
        """Cancel the event. Cancelling an executed event is a no-op."""
        if not self.executed:
            self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not self.cancelled and not self.executed

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("done" if self.executed else "pending")
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Heap-based deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, callback, arg1, arg2)
        sim.run(until=100.0)

    All times are in simulated seconds. The simulator starts at time 0.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[EventHandle] = []
        self._running = False
        self._events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including lazily cancelled ones)."""
        return sum(1 for event in self._heap if event.pending)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be finite and non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if math.isnan(time) or math.isinf(time):
            raise SimulationError(f"invalid event time: {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: stop once the next event would fire strictly after this
                time; the clock is then advanced to ``until``. ``None`` runs
                until the queue drains.
            max_events: safety valve; raise :class:`SimulationError` if more
                than this many events execute.

        Returns:
            The simulated time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.executed = True
                event.callback(*event.args)
                self._events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible runaway simulation"
                    )
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def run_until_idle(self, max_time: Optional[float] = None) -> float:
        """Run until the queue is empty or ``max_time`` is reached."""
        return self.run(until=max_time)

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._now = 0.0
        self._seq = 0
        self._heap.clear()
        self._events_executed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6f} pending={len(self._heap)}>"
