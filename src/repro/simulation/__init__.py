"""Discrete-event simulation substrate.

This package provides the deterministic, seedable discrete-event engine on
which the whole Fabric model runs: a heap-based scheduler with cancellable
events (:mod:`repro.simulation.engine`), periodic timers — both the naive
one-event-per-tick :mod:`repro.simulation.timers` and the slot-batched
hierarchical :mod:`repro.simulation.timerwheel` — named deterministic
random streams (:mod:`repro.simulation.random`) and a light-weight
process/actor base class (:mod:`repro.simulation.process`).
"""

from repro.simulation.engine import EventHandle, Simulator, SimulationError
from repro.simulation.process import Process
from repro.simulation.random import RandomStreams
from repro.simulation.timers import PeriodicTimer
from repro.simulation.timerwheel import TimerWheel, WheelTimer

__all__ = [
    "EventHandle",
    "PeriodicTimer",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "TimerWheel",
    "WheelTimer",
]
