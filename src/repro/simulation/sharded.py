"""Process-sharded execution of one simulation.

The sweep layer (PR 4) distributes *whole* simulations over worker
processes; this module shards *one* simulation across N workers so the
10k-peer regime fits in wall-clock budgets a single event loop cannot
reach. The design is a classic conservative (lookahead-based) parallel
discrete-event scheme, specialized to this codebase's determinism
contract:

Partitioning
------------

Nodes are partitioned by :func:`plan_shards`. When the deployment places
nodes in regions (a WAN scenario's ``TopologyLatency``), the partition is
**region-aligned**: whole regions map onto shards round-robin in sorted
region order, so the fast intra-region links never cross a shard boundary
and the lookahead is the minimum *inter-region* base delay. Without
regions, nodes round-robin individually and the lookahead falls back to
the latency model's global :meth:`~repro.net.latency.LatencyModel.
min_delay`.

Window protocol
---------------

All shards advance in lockstep over a fixed barrier grid. The window
length is ``1/m`` seconds with ``m = ceil(1 / lookahead)``, so barriers
land on exact machine numbers (``j / m``) and every integer second is a
barrier. Each round:

1. every shard executes its half-open window ``[t, t + 1/m)`` via the
   engine's :meth:`~repro.simulation.engine.Simulator.run_window` hook
   (events at exactly the window edge stay pending);
2. shards hand their egress — cross-shard deliveries whose full send-side
   physics (monitor accounting, uplink reservation, per-source latency
   draw) already happened on the sender's shard — to the coordinator as
   pre-serialized record batches;
3. the coordinator routes each record to its destination's owner shard,
   sorts every shard's batch by the canonical ``(time, source shard,
   send order)`` key, and injects it before the next window runs.

A message sent during ``[t, t + 1/m)`` is in flight for at least the
lookahead ``L >= 1/m``, so it arrives at or after the next barrier —
never inside a window another shard has already executed. That is the
whole correctness argument; everything else is bookkeeping.

At integer-second barriers the coordinator additionally lets every shard
run its events at *exactly* the barrier time (mirroring the inclusive
``run(until=k)`` steps of the single-process driver) and evaluates the
global completion predicate, so the merged run terminates at the same
simulated instant as the single-process run.

Determinism
-----------

Bit-for-bit equality of the merged run with the single-process run rests
on three invariants, spelled out in ``docs/sharding.md``:

* every random draw is keyed to a single node (per-peer gossip streams,
  per-source ``network:latency:<src>`` streams), so draw sequences depend
  only on that node's own event order;
* each node's event order is preserved because all its events are either
  produced on its own shard or injected at barriers strictly before their
  time;
* all merged accounting (monitor, tracker, drop counters) is either
  integer sums or computed from sorted sample multisets.

The engine-internal ``events_executed`` counter is the one quantity that
legitimately differs across shard counts (exact-tie delivery grouping is
shard-local), which is why the sharded determinism gate compares every
golden metric *except* it.

Supervision
-----------

Worker processes are supervised, not trusted: replies are collected via
a poll loop with liveness checks and a response deadline
(:class:`SupervisionConfig`), so a worker that is OOM-killed, wedged or
disconnected raises a structured :class:`ShardWorkerError` — shard id,
last completed window, command in flight, exit code — instead of
hanging the coordinator on a bare ``recv()``; the coordinator then
terminates and reaps every sibling. Because runs are bit-for-bit
deterministic, recovery is deterministic re-execution, implemented one
layer up (:func:`repro.scenarios.sharded.run_scenario_sharded`'s retry/
degradation ladder; see docs/sharding.md, "Failure modes and recovery").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from time import monotonic, perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# Below this lookahead the barrier grid would need >1000 windows per
# simulated second — all coordination, no progress. Such deployments run
# single-process instead (docs/sharding.md, "when shards=1 is forced").
MIN_LOOKAHEAD = 1e-3


@dataclass(frozen=True)
class ShardPlan:
    """The partition and synchronization parameters of one sharded run.

    ``shards == 1`` means single-process execution (either requested or
    forced; ``forced_reason`` says why). ``windows_per_second`` is the
    barrier-grid denominator ``m``: barriers sit at ``j / m`` for integer
    ``j``, which keeps them exact machine numbers and makes every integer
    second a barrier.
    """

    shards: int
    owner_of: Dict[str, int] = field(default_factory=dict)
    lookahead: float = 0.0
    windows_per_second: int = 1
    forced_reason: Optional[str] = None

    @property
    def window(self) -> float:
        return 1.0 / self.windows_per_second

    def owned_by(self, shard_id: int) -> List[str]:
        return [name for name, owner in self.owner_of.items() if owner == shard_id]


def _round_robin(names: Sequence[str], shards: int) -> Dict[str, int]:
    # (len, name) ordering ranks peer-2 before peer-10 without parsing.
    ordered = sorted(names, key=lambda name: (len(name), name))
    return {name: index % shards for index, name in enumerate(ordered)}


def plan_shards(
    nodes: Sequence[str],
    shards: int,
    regions: Optional[Dict[str, str]] = None,
    latency_model=None,
    min_lookahead: float = MIN_LOOKAHEAD,
    region_lookahead: bool = True,
) -> ShardPlan:
    """Partition ``nodes`` and derive the window lookahead.

    Args:
        nodes: every simulated node, including the orderer.
        shards: requested worker count; the effective count may be lower
            (never more shards than regions in a region-aligned plan, or
            than nodes).
        regions: node -> region placement, when the deployment has one.
            Placements covering every node yield a region-aligned
            partition.
        latency_model: the deployment's latency model; supplies the
            lookahead bound (``min_delay`` /
            ``min_delay_between_regions``).
        min_lookahead: below this bound the plan degrades to shards=1.
        region_lookahead: use the tighter minimum over *cross-shard
            region pairs* as the lookahead. Only sound when every
            cross-shard message is in flight for at least its own link's
            bound — true for ``send``/``multicast`` (per-destination
            latency draws) but NOT for ``send_aggregate``, whose whole
            fanout shares one draw that may come from the fastest link.
            Deployments with aggregated background traffic must pass
            ``False`` to fall back to the global ``min_delay`` bound.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return ShardPlan(shards=1)
    if latency_model is None:
        return ShardPlan(shards=1, forced_reason="no latency model to derive a lookahead from")

    region_aligned = bool(regions) and all(node in regions for node in nodes)
    if region_aligned:
        distinct = sorted(set(regions[node] for node in nodes))
        effective = min(shards, len(distinct), len(nodes))
        if effective < 2:
            return ShardPlan(
                shards=1,
                forced_reason="region-aligned plan has fewer than two populated shards",
            )
        region_shard = {region: index % effective for index, region in enumerate(distinct)}
        owner_of = {node: region_shard[regions[node]] for node in nodes}
        min_between = getattr(latency_model, "min_delay_between_regions", None)
        if region_lookahead and min_between is not None:
            lookahead = min(
                (
                    min_between(a, b)
                    for a in distinct
                    for b in distinct
                    if region_shard[a] != region_shard[b]
                ),
                default=0.0,
            )
        else:
            lookahead = latency_model.min_delay()
    else:
        effective = min(shards, len(nodes))
        if effective < 2:
            return ShardPlan(shards=1, forced_reason="fewer than two nodes to partition")
        owner_of = _round_robin(nodes, effective)
        lookahead = latency_model.min_delay()

    if lookahead < min_lookahead:
        return ShardPlan(
            shards=1,
            forced_reason=(
                f"lookahead {lookahead!r} below the {min_lookahead!r} floor "
                "(sub-lookahead latencies make windows degenerate)"
            ),
        )
    windows_per_second = max(1, ceil(1.0 / lookahead))
    # Guard against float-boundary cases where 1/m could exceed the
    # lookahead by one ulp.
    while windows_per_second * lookahead < 1.0:
        windows_per_second += 1
    return ShardPlan(
        shards=effective,
        owner_of=owner_of,
        lookahead=lookahead,
        windows_per_second=windows_per_second,
    )


class ShardWorkerError(RuntimeError):
    """A shard worker failed: died, wedged, closed its pipe, or raised.

    Structured so the supervisor (and :class:`~repro.metrics.runhealth.
    RunHealth`) can record exactly what was lost: which shard, the last
    window barrier it completed, the command that was in flight, the OS
    exit code when the process is gone, and the remote traceback when
    the worker managed to report one before dying.
    """

    def __init__(
        self,
        reason: str,
        shard_id: Optional[int] = None,
        last_window: Optional[float] = None,
        command: Optional[str] = None,
        exitcode: Optional[int] = None,
        remote_traceback: Optional[str] = None,
    ) -> None:
        self.reason = reason
        self.shard_id = shard_id
        self.last_window = last_window
        self.command = command
        self.exitcode = exitcode
        self.remote_traceback = remote_traceback
        details = []
        if shard_id is not None:
            details.append(f"shard={shard_id}")
        if command is not None:
            details.append(f"command={command!r}")
        if last_window is not None:
            details.append(f"last_completed_window={last_window}")
        if exitcode is not None:
            details.append(f"exitcode={exitcode}")
        message = reason if not details else f"{reason} ({', '.join(details)})"
        if remote_traceback:
            message = f"{message}\n--- worker traceback ---\n{remote_traceback}"
        super().__init__(message)


@dataclass(frozen=True)
class SupervisionConfig:
    """Deadlines and escalation steps of the shard supervisor.

    ``response_timeout`` bounds how long the coordinator waits for one
    command's reply from a worker that is still *alive* — a wedged
    worker (stuck in a loop, swapping, blocked on I/O) trips it and
    raises :class:`ShardWorkerError` instead of hanging the run forever;
    ``None`` waits indefinitely (liveness checks still catch dead
    workers within ``poll_interval``). The join timeouts govern teardown
    escalation: graceful exit -> ``terminate()`` (SIGTERM) ->
    ``kill()`` (SIGKILL), each bounded, so not even a SIGKILL-immune
    worker can block interpreter exit.
    """

    poll_interval: float = 0.05
    response_timeout: Optional[float] = 600.0
    shutdown_join: float = 30.0
    terminate_join: float = 5.0
    kill_join: float = 2.0


class ShardTransport:
    """Synchronous command channel to one shard worker.

    Two implementations exist: :class:`InlineTransport` drives a session
    object in-process (tests, single-core fallbacks) and
    :class:`PipeTransport` drives a worker process over a
    ``multiprocessing`` pipe. The command vocabulary:

    * ``("window", end, records)`` — inject, run ``[now, end)``, reply
      ``(egress, local_done)``;
    * ``("tick", t, records)`` — inject, run events at exactly ``t``
      (inclusive), reply ``(egress, local_done)``;
    * ``("collect", None, None)`` — reply the shard's result payload;
    * ``("exit", None, None)`` — no reply, tear down.
    """

    def request(self, command: Tuple) -> object:  # pragma: no cover - interface
        raise NotImplementedError

    def post(self, command: Tuple) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def collect_response(self) -> object:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def abort(self) -> None:
        """Tear down immediately after a sibling failed (no graceful exit)."""
        self.close()


class InlineTransport(ShardTransport):
    """Drive a shard session in the coordinator's own process."""

    def __init__(self, session, shard_id: Optional[int] = None) -> None:
        self.session = session
        self.shard_id = (
            shard_id if shard_id is not None else getattr(session, "shard_id", None)
        )
        self.last_window: Optional[float] = None
        self._pending: Optional[object] = None

    def post(self, command: Tuple) -> None:
        # Uniform failure surface with the process transport: any
        # exception out of the session's handler becomes a structured
        # ShardWorkerError, so the supervision ladder above does not
        # care which transport it is driving.
        try:
            self._pending = self.session.handle(command)
        except ShardWorkerError:
            raise
        except Exception as exc:
            import traceback

            raise ShardWorkerError(
                f"inline shard session raised: {exc}",
                shard_id=self.shard_id,
                last_window=self.last_window,
                command=command[0],
                remote_traceback=traceback.format_exc(),
            ) from exc
        if command[0] in ("window", "tick"):
            self.last_window = command[1]

    def collect_response(self) -> object:
        response, self._pending = self._pending, None
        return response

    def request(self, command: Tuple) -> object:
        self.post(command)
        return self.collect_response()

    def close(self) -> None:
        self._pending = None

    def abort(self) -> None:
        self._pending = None


class PipeTransport(ShardTransport):
    """Drive a shard worker process over a duplex pipe, supervised.

    Replies are collected through a poll loop rather than a bare
    ``recv()``: every ``poll_interval`` the worker's liveness is checked
    (``Process.is_alive()`` / ``exitcode``), and an overall
    ``response_timeout`` bounds how long an *alive* worker may stay
    silent. A dead, wedged or disconnected worker therefore raises a
    structured :class:`ShardWorkerError` — never hangs the coordinator.
    """

    def __init__(
        self,
        connection,
        process,
        shard_id: Optional[int] = None,
        supervision: Optional[SupervisionConfig] = None,
    ) -> None:
        self.connection = connection
        self.process = process
        self.shard_id = shard_id
        self.supervision = supervision or SupervisionConfig()
        self.last_window: Optional[float] = None
        self._in_flight: Optional[str] = None
        self._in_flight_time: Optional[float] = None
        self._closed = False

    def _error(self, reason: str, remote_traceback: Optional[str] = None):
        # A pipe EOF can race ahead of process reaping: give the worker a
        # moment to be collected so the exit code makes it into the report.
        self.process.join(0.2)
        exitcode = None if self.process.is_alive() else self.process.exitcode
        return ShardWorkerError(
            reason,
            shard_id=self.shard_id,
            last_window=self.last_window,
            command=self._in_flight,
            exitcode=exitcode,
            remote_traceback=remote_traceback,
        )

    def post(self, command: Tuple) -> None:
        self._in_flight = command[0]
        self._in_flight_time = command[1] if command[0] in ("window", "tick") else None
        try:
            self.connection.send(command)
        except (BrokenPipeError, OSError) as exc:
            raise self._error(f"pipe write failed: {exc}") from exc

    def collect_response(self) -> object:
        supervision = self.supervision
        deadline = (
            None
            if supervision.response_timeout is None
            else monotonic() + supervision.response_timeout
        )
        while True:
            try:
                if self.connection.poll(supervision.poll_interval):
                    response = self.connection.recv()
                    if self._in_flight_time is not None:
                        self.last_window = self._in_flight_time
                    self._in_flight = self._in_flight_time = None
                    return response
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise self._error(f"pipe closed mid-command: {exc!r}") from exc
            if not self.process.is_alive():
                # A final message may still sit in the pipe buffer; loop
                # once more with a zero-ish poll before declaring death.
                try:
                    if self.connection.poll(0):
                        continue
                except (EOFError, BrokenPipeError, OSError):
                    pass
                raise self._error(
                    f"worker process died (exit code {self.process.exitcode})"
                )
            if deadline is not None and monotonic() > deadline:
                raise self._error(
                    f"no response within {supervision.response_timeout}s "
                    "(worker alive but unresponsive)"
                )

    def request(self, command: Tuple) -> object:
        self.post(command)
        return self.collect_response()

    def _escalate(self) -> None:
        """join -> terminate -> kill, each bounded, then give up: a
        SIGKILL-immune worker must not block interpreter exit (it is a
        daemon process; the interpreter reaps it on shutdown)."""
        process = self.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=self.supervision.terminate_join)
        if process.is_alive():  # pragma: no cover - SIGTERM-immune worker
            kill = getattr(process, "kill", process.terminate)
            kill()
            process.join(timeout=self.supervision.kill_join)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.connection.send(("exit", None, None))
        except (BrokenPipeError, OSError):
            pass
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        self.process.join(timeout=self.supervision.shutdown_join)
        self._escalate()

    def abort(self) -> None:
        """Immediate teardown after a failure: no graceful exit command,
        straight to terminate/kill so sibling reaping is prompt."""
        if self._closed:
            return
        self._closed = True
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        self._escalate()


class WindowedCoordinator:
    """Lockstep barrier loop over a set of shard transports.

    Reproduces the single-process driver's control flow — 1-second
    predicate steps to completion (or :class:`TimeoutError` at the
    deadline), then the idle tail — on the sharded barrier grid, routing
    cross-shard record batches between windows.
    """

    def __init__(
        self,
        transports: Sequence[ShardTransport],
        plan: ShardPlan,
        workload_end: float,
        deadline: float,
        idle_tail: float = 0.0,
        health=None,
    ) -> None:
        if len(transports) != plan.shards:
            raise ValueError("one transport per shard required")
        self.transports = list(transports)
        self.plan = plan
        self.workload_end = workload_end
        self.deadline = deadline
        self.idle_tail = idle_tail
        self.health = health
        self._pending: List[list] = [[] for _ in transports]

    def _fail(self, error: ShardWorkerError):
        """A worker failed mid-round: reap every sibling immediately
        (terminate/kill, bounded joins) and surface the structured error."""
        for transport in self.transports:
            transport.abort()
        raise error

    def _round(self, op: str, time: float) -> List[object]:
        """One lockstep exchange: command all shards, gather all replies,
        route the egress batches for the next round."""
        start = perf_counter()
        transports = self.transports
        pending = self._pending
        for index, transport in enumerate(transports):
            batch = pending[index]
            if batch:
                # Canonical injection order: stable sort by time keeps
                # equal-time records in (source shard, send order) — the
                # deterministic cross-shard tiebreak (docs/sharding.md).
                batch.sort(key=_record_time)
            try:
                transport.post((op, time, batch))
            except ShardWorkerError as exc:
                self._fail(exc)
            pending[index] = []
        replies: List[object] = []
        failure: Optional[ShardWorkerError] = None
        for transport in transports:
            # Keep collecting after a failure: siblings that answered
            # this round are drained (not left mid-write), and the FIRST
            # failure is the one reported.
            try:
                replies.append(transport.collect_response())
            except ShardWorkerError as exc:
                if failure is None:
                    failure = exc
                replies.append(None)
        if failure is not None:
            self._fail(failure)
        owner_of = self.plan.owner_of
        for egress, _done in replies:
            for record in egress:
                pending[owner_of[record[3]]].append(record)
        if self.health is not None:
            self.health.record_round(
                op,
                [
                    transport.shard_id if transport.shard_id is not None else index
                    for index, transport in enumerate(transports)
                ],
                perf_counter() - start,
            )
        return replies

    def run(self) -> float:
        """Drive the run to completion; returns the final simulated time."""
        m = self.plan.windows_per_second
        j = 0
        done_at: Optional[float] = None
        while done_at is None:
            j += 1
            barrier = j / m
            self._round("window", barrier)
            if j % m == 0:
                replies = self._round("tick", barrier)
                if all(done for _egress, done in replies):
                    done_at = barrier
                elif barrier >= self.deadline:
                    raise TimeoutError(
                        f"sharded run still incomplete at t={barrier} "
                        f"(deadline {self.deadline})"
                    )
        end_of_measurement = done_at + self.idle_tail
        if self.idle_tail > 0:
            while True:
                j += 1
                barrier = j / m
                if barrier >= end_of_measurement:
                    break
                self._round("window", barrier)
            self._round("window", end_of_measurement)
            self._round("tick", end_of_measurement)
        return end_of_measurement

    def collect(self) -> List[object]:
        """Fetch every shard's result payload."""
        return [
            transport.request(("collect", None, None)) for transport in self.transports
        ]

    def close(self) -> None:
        for transport in self.transports:
            transport.close()


def _record_time(record) -> float:
    return record[1]


RunDriver = Callable[[WindowedCoordinator], float]
