"""Engine core selection: pure-Python twin vs mypyc-compiled extension.

``_pure.py`` is the single source of truth for the engine inner loop
(:class:`Simulator`, :class:`TimerWheel`, :class:`TrafficMonitor`, the
latency kernels). ``setup.py`` with ``REPRO_BUILD_EXT=1`` generates
``_compiled.py`` as a mechanical copy and compiles it with mypyc; both
twins are then importable side by side (the parity suite in
``tests/property/test_core_parity.py`` runs random schedules through both
and asserts identical execution sequences).

This package picks the *active* twin at import time from the
``REPRO_ENGINE`` environment variable:

* ``auto`` (default) — the compiled extension when it is importable and
  genuinely compiled, the pure twin otherwise;
* ``pure`` — always the pure twin (never even tries the import);
* ``compiled`` — the extension or :class:`ImportError`; never a silent
  fallback (this is what ``perf_gate.py --engine compiled`` relies on).

A stray *interpreted* ``_compiled.py`` (left over from a build that never
ran mypyc) is rejected: it would be a second, slower pure twin silently
masquerading as the extension. :func:`active_engine` reports which twin
won — every place that records results (snapshots, ``BENCH_core.json``,
the perf-gate banner) stamps it so pure and compiled numbers can never be
silently compared.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Tuple

_VALID_ENGINES = ("auto", "pure", "compiled")


def _is_compiled(module: Any) -> bool:
    """True when ``module`` is a genuine extension (not interpreted source).

    A mypyc build leaves a ``.so``/``.pyd``; an abandoned generated copy
    leaves ``_compiled.py``, which must not be mistaken for the extension.
    """
    file = getattr(module, "__file__", None) or ""
    return bool(file) and not (file.endswith(".py") or file.endswith(".pyc"))


def select_implementation(
    preference: str, compiled_module: Optional[Any], pure_module: Any
) -> Tuple[Any, str]:
    """Resolve ``preference`` against the available twins.

    Returns ``(module, engine_name)``. Raises :class:`ValueError` for an
    unknown preference and :class:`ImportError` when ``compiled`` is forced
    but no genuine extension is available.
    """
    if preference not in _VALID_ENGINES:
        raise ValueError(
            f"invalid REPRO_ENGINE {preference!r}; expected one of {_VALID_ENGINES}"
        )
    if preference == "pure":
        return pure_module, "pure"
    if compiled_module is not None and _is_compiled(compiled_module):
        return compiled_module, "compiled"
    if preference == "compiled":
        raise ImportError(
            "REPRO_ENGINE=compiled but the mypyc extension is not available; "
            "build it with REPRO_BUILD_EXT=1 pip install -e . "
            "(see docs/performance.md)"
        )
    return pure_module, "pure"


def load_implementation() -> Tuple[Any, str]:
    """Import the twins and pick one per ``REPRO_ENGINE``."""
    preference = os.environ.get("REPRO_ENGINE", "auto").strip().lower() or "auto"
    from repro.simulation._core import _pure

    compiled = None
    if preference != "pure":
        try:
            from repro.simulation._core import _compiled  # type: ignore[attr-defined]

            compiled = _compiled
        except ImportError:
            compiled = None
    return select_implementation(preference, compiled, _pure)


_impl, _engine = load_implementation()


def active_engine() -> str:
    """Name of the twin this process runs on: ``"pure"`` or ``"compiled"``."""
    return _engine


def core_info() -> dict:
    """Engine metadata for banners and result stamping."""
    return {"engine": _engine, "module": _impl.__name__}


SimulationError = _impl.SimulationError
EventHandle = _impl.EventHandle
Simulator = _impl.Simulator
WheelTimer = _impl.WheelTimer
TimerWheel = _impl.TimerWheel
DEFAULT_TICKS_PER_SECOND = _impl.DEFAULT_TICKS_PER_SECOND
DEFAULT_RING_TICKS = _impl.DEFAULT_RING_TICKS
TrafficTotals = _impl.TrafficTotals
TrafficMonitor = _impl.TrafficMonitor
make_lan_sampler = _impl.make_lan_sampler
make_lan_batch_sampler = _impl.make_lan_batch_sampler
link_enqueue = _impl.link_enqueue
LINK_DROP_TAIL = _impl.LINK_DROP_TAIL
LINK_DROP_CODEL = _impl.LINK_DROP_CODEL
_ENTRY_POOL_MAX = _impl._ENTRY_POOL_MAX
_COMPACT_MIN_STALE = _impl._COMPACT_MIN_STALE
_MAX_DENSE_GROWTH = _impl._MAX_DENSE_GROWTH
_TX_BINS = _impl._TX_BINS
_TX_KINDS = _impl._TX_KINDS
_TX_OVER = _impl._TX_OVER

__all__ = [
    "DEFAULT_RING_TICKS",
    "DEFAULT_TICKS_PER_SECOND",
    "EventHandle",
    "LINK_DROP_CODEL",
    "LINK_DROP_TAIL",
    "SimulationError",
    "Simulator",
    "TimerWheel",
    "TrafficMonitor",
    "TrafficTotals",
    "WheelTimer",
    "active_engine",
    "core_info",
    "link_enqueue",
    "load_implementation",
    "make_lan_batch_sampler",
    "make_lan_sampler",
    "select_implementation",
]
