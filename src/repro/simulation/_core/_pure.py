"""Single source of truth for the engine inner loop (pure/compiled twins).

This module holds every class on the per-event hot path — the
:class:`Simulator` event heap, the :class:`TimerWheel` tick cascade, the
:class:`TrafficMonitor` counter updates and the inlined Kinderman-Monahan
latency kernels — in one mypyc-compilable file. ``setup.py`` (with
``REPRO_BUILD_EXT=1``) generates ``_compiled.py`` as a mechanical copy of
this file (stripping only the ``__slots__`` declarations, which native
classes neither need nor accept) and compiles it with mypyc, so the two
twins can never drift: there is exactly one implementation text.

:mod:`repro.simulation._core` selects between the twins at import time
(``REPRO_ENGINE`` = ``auto`` | ``pure`` | ``compiled``) and the historical
module paths — :mod:`repro.simulation.engine`,
:mod:`repro.simulation.timerwheel`, :mod:`repro.net.monitor` — re-export
whichever twin is active, so no caller changes.

Determinism contract
--------------------

Reproducibility is bit-for-bit: with a fixed seed, two runs execute the
exact same events in the exact same order at the exact same times, and all
derived metrics (latency samples, byte counts) are equal as floats. Ties on
the event time are broken by the scheduling sequence number. Any refactor
of this module must preserve (a) the ``(time, seq)`` ordering, (b) the
assignment of sequence numbers in scheduling order, (c) the relative order
of callback execution and clock advancement, and (d) the RNG consumption
order of the latency kernels. The checker in :mod:`repro.perf.regression`
asserts this contract against committed golden metrics — under *both*
twins (the CI ``compiled-core`` job replays all six goldens through the
extension, single-process and shards=4).

Heap layout
-----------

The heap stores plain five-element lists rather than handle objects::

    [time, seq, callback, args, handle]

``heapq`` then compares entries with C-level list comparison: ``time``
first, then the monotonically increasing ``seq``, which is unique, so the
comparison never reaches the callback. Cancellation is lazy and in-place:
cancelling sets ``entry[2]`` (the callback) to ``None``; the entry stays in
the heap and is discarded when it surfaces. Executed and discarded entries
are recycled through a bounded free list, so steady-state scheduling
allocates no new lists. When lazily cancelled entries exceed half the heap
(mass timer cancellation, e.g. a crash fault stopping every periodic
component), the heap is compacted in one pass to bound memory in long runs.

The entry slots are deliberately typed ``Any``: the determinism contract
pins the exact heap entry shape (interpreted friend code in
:mod:`repro.net.network` builds and pushes entries itself), so the compiled
twin keeps the same boxed lists and wins on dispatch, attribute traffic and
integer bookkeeping rather than on unboxed entry fields.
"""

from __future__ import annotations

import random as _random
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from math import ceil, exp as _exp, log as _log
from operator import itemgetter as _itemgetter
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from collections import _count_elements  # type: ignore[attr-defined]

_INF = float("inf")

# Heap entry slots: [time, seq, callback, args, handle]. ``callback is
# None`` marks a lazily cancelled entry.
_ENTRY_POOL_MAX = 4096
# Compact when stale (cancelled-in-heap) entries pass both thresholds.
_COMPACT_MIN_STALE = 64


class SimulationError(RuntimeError):
    """Raised on invalid scheduler usage (e.g. scheduling in the past)."""


class EventHandle:
    """Handle for a scheduled event, usable to cancel it.

    Cancellation is lazy: the entry stays in the heap but is skipped when it
    surfaces. ``handle.cancelled`` and ``handle.executed`` expose the state.
    """

    __slots__ = ("time", "seq", "_sim", "_entry", "_cancelled", "_fired")

    time: float
    seq: int
    _sim: "Simulator"
    _entry: Any
    _cancelled: bool
    _fired: bool

    def __init__(self, sim: "Simulator", entry: List[Any]) -> None:
        self.time = entry[0]
        self.seq = entry[1]
        self._sim = sim
        self._entry = entry
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def executed(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not self._cancelled and not self._fired

    def cancel(self) -> None:
        """Cancel the event. Cancelling an executed event is a no-op."""
        if self._fired or self._cancelled:
            return
        self._cancelled = True
        entry = self._entry
        self._entry = None
        entry[2] = None
        entry[3] = None
        entry[4] = None
        self._sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("done" if self._fired else "pending")
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Heap-based deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, callback, arg1, arg2)
        sim.run(until=100.0)

    All times are in simulated seconds. The simulator starts at time 0.
    """

    __slots__ = (
        "_now",
        "_seq",
        "_heap",
        "_running",
        "_events_executed",
        "_live",
        "_stale",
        "_pool",
        "_peak_heap",
        "_wheel",
        "use_timer_wheel",
    )

    _now: float
    _seq: int
    _heap: List[List[Any]]
    _running: bool
    _events_executed: int
    _live: int
    _stale: int
    _pool: List[List[Any]]
    _peak_heap: int
    _wheel: Optional["TimerWheel"]
    use_timer_wheel: bool

    def __init__(self, use_timer_wheel: bool = True) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap = []
        self._running = False
        self._events_executed = 0
        self._live = 0  # scheduled minus cancelled minus executed: O(1)
        self._stale = 0  # lazily cancelled entries still in the heap
        self._pool = []
        self._peak_heap = 0
        self._wheel = None
        # Recurring timers batch into shared wheel slots when True (the
        # process layer consults this); False forces the naive
        # one-event-per-tick PeriodicTimer path — kept selectable so the
        # perf harness can measure the event-count reduction.
        self.use_timer_wheel = use_timer_wheel

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live queued events, excluding lazily cancelled ones.

        Maintained as an O(1) counter; the old implementation scanned the
        whole heap.
        """
        return self._live

    @property
    def peak_heap_size(self) -> int:
        """Largest heap length observed (perf instrumentation)."""
        return self._peak_heap

    @property
    def wheel(self) -> "TimerWheel":
        """The simulator's shared :class:`TimerWheel`, created on demand.

        All recurring timers of a simulation share one wheel so that
        same-tick firings across processes coalesce into single events.
        """
        wheel = self._wheel
        if wheel is None:
            wheel = self._wheel = TimerWheel(self)
        return wheel

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be finite and non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        entry = self._push(time, callback, args)
        handle = EventHandle(self, entry)
        entry[4] = handle
        return handle

    def schedule_call(
        self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...] = ()
    ) -> None:
        """Fast-path schedule without an :class:`EventHandle`.

        For hot callers that never cancel (the network layer schedules two
        to three events per message); skips the handle allocation. The body
        duplicates :meth:`_push` to save a call frame per event.
        """
        if not (self._now <= time < _INF):
            self._reject_time(time)
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = self._seq
            entry[2] = callback
            entry[3] = args
            entry[4] = None
        else:
            entry = [time, self._seq, callback, args, None]
        self._seq += 1
        heap = self._heap
        _heappush(heap, entry)
        self._live += 1
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def schedule_records(self, callback: Callable[..., Any], records: List[List[Any]]) -> None:
        """Batch fast path: schedule ``callback(*rec)`` at ``rec[0]`` for
        each record in ``records``.

        The record list itself is the event's argument vector — the run
        loop unpacks it with ``callback(*rec)`` — so a caller that makes
        the record's last slot the record itself can reclaim it into a
        free list inside the callback. This is what the network multicast
        path uses for its pooled slot-delivery records: one call frame
        schedules a whole fanout, sequence numbers are assigned in list
        order (consecutively, which the multicast tie-grouping proof
        relies on), and steady-state dissemination allocates neither heap
        entries (engine free list) nor argument tuples (caller free list)
        per recipient.
        """
        now = self._now
        seq = self._seq
        pool = self._pool
        heap = self._heap
        heappush = _heappush
        for rec in records:
            time = rec[0]
            if not (now <= time < _INF):
                # Repair the counters consumed so far before raising so a
                # rejected record cannot corrupt the live count.
                self._live += seq - self._seq
                self._seq = seq
                self._reject_time(time)
            if pool:
                entry = pool.pop()
                entry[0] = time
                entry[1] = seq
                entry[2] = callback
                entry[3] = rec
                entry[4] = None
            else:
                entry = [time, seq, callback, rec, None]
            seq += 1
            heappush(heap, entry)
        self._live += seq - self._seq
        self._seq = seq
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def _push(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]) -> List[Any]:
        # ``not (now <= time < inf)`` is a single guard catching NaN
        # (comparisons are False), +/-inf and past times at once.
        if not (self._now <= time < _INF):
            self._reject_time(time)
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = self._seq
            entry[2] = callback
            entry[3] = args
            entry[4] = None
        else:
            entry = [time, self._seq, callback, args, None]
        self._seq += 1
        heap = self._heap
        _heappush(heap, entry)
        self._live += 1
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)
        return entry

    def _reject_time(self, time: float) -> None:
        if time != time or time == _INF:
            raise SimulationError(f"invalid event time: {time}")
        raise SimulationError(
            f"cannot schedule at t={time} before current time t={self._now}"
        )

    def _note_cancel(self) -> None:
        self._live -= 1
        self._stale += 1
        heap_len = len(self._heap)
        if self._stale > _COMPACT_MIN_STALE and self._stale * 2 >= heap_len:
            self._compact()

    def _compact(self) -> None:
        """Drop lazily cancelled entries and re-heapify in one pass.

        Bounds memory when timers are cancelled en masse (crash faults in
        long recovery/background runs) instead of letting dead entries
        accumulate until their scheduled times.
        """
        pool = self._pool
        live_entries: List[List[Any]] = []
        for entry in self._heap:
            if entry[2] is not None:
                live_entries.append(entry)
            elif len(pool) < _ENTRY_POOL_MAX:
                pool.append(entry)
        _heapify(live_entries)
        self._heap = live_entries
        self._stale = 0

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: stop once the next event would fire strictly after this
                time; the clock is then advanced to ``until``. ``None`` runs
                until the queue drains.
            max_events: safety valve; raise :class:`SimulationError` if more
                than this many events execute.

        Returns:
            The simulated time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # Executed-event accounting is batched into locals and flushed in
        # the ``finally`` block: one attribute read-modify-write per run()
        # instead of two per event. ``_live``/``_events_executed`` are
        # therefore only exact while the loop is not executing a callback,
        # which is when anyone queries them.
        executed = 0
        heappop = _heappop
        pool = self._pool
        heap = self._heap
        # One comparison per event instead of two None tests: absent
        # bounds become sentinels no event time / count can exceed.
        limit = _INF if until is None else until
        event_budget = _INF if max_events is None else max_events
        try:
            while heap:
                entry = heap[0]
                callback = entry[2]
                if callback is None:
                    heappop(heap)
                    self._stale -= 1
                    if len(pool) < _ENTRY_POOL_MAX:
                        pool.append(entry)
                    continue
                event_time = entry[0]
                if event_time > limit:
                    break
                heappop(heap)
                self._now = event_time
                args = entry[3]
                handle = entry[4]
                if handle is not None:
                    handle._fired = True
                    handle._entry = None
                entry[2] = None
                entry[3] = None
                entry[4] = None
                if len(pool) < _ENTRY_POOL_MAX:
                    pool.append(entry)
                executed += 1
                callback(*args)
                # _compact() (reachable only through a cancel inside the
                # callback) swaps the heap list object; re-bind after each
                # callback, the only place the swap can happen.
                heap = self._heap
                if executed >= event_budget:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible runaway simulation"
                    )
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._events_executed += executed
            self._live -= executed
            self._running = False

    def run_until_idle(self, max_time: Optional[float] = None) -> float:
        """Run until the queue is empty or ``max_time`` is reached."""
        return self.run(until=max_time)

    def run_window(self, end: float) -> float:
        """Execute every event with time **strictly below** ``end``, then
        advance the clock to exactly ``end``.

        This is the conservative-window hook of the process-sharded
        executor (:mod:`repro.simulation.sharded`): a shard runs the
        half-open window ``[now, end)``, leaving events at exactly ``end``
        pending, so that cross-shard records injected at the barrier —
        whose times are ``>= end`` by the lookahead guarantee — can still
        be scheduled (``now`` never passes them) and order among the
        window-edge events by scheduling sequence. Contrast :meth:`run`,
        whose ``until`` bound is inclusive.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if end < self._now:
            raise SimulationError(
                f"cannot run a window ending at t={end} before current time t={self._now}"
            )
        self._running = True
        executed = 0
        heappop = _heappop
        pool = self._pool
        heap = self._heap
        try:
            while heap:
                entry = heap[0]
                callback = entry[2]
                if callback is None:
                    heappop(heap)
                    self._stale -= 1
                    if len(pool) < _ENTRY_POOL_MAX:
                        pool.append(entry)
                    continue
                event_time = entry[0]
                if event_time >= end:
                    break
                heappop(heap)
                self._now = event_time
                args = entry[3]
                handle = entry[4]
                if handle is not None:
                    handle._fired = True
                    handle._entry = None
                entry[2] = None
                entry[3] = None
                entry[4] = None
                if len(pool) < _ENTRY_POOL_MAX:
                    pool.append(entry)
                executed += 1
                callback(*args)
                heap = self._heap  # _compact() may swap the list object
            self._now = end
            return self._now
        finally:
            self._events_executed += executed
            self._live -= executed
            self._running = False

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._now = 0.0
        self._seq = 0
        self._heap.clear()
        self._pool.clear()
        self._events_executed = 0
        self._live = 0
        self._stale = 0
        self._peak_heap = 0
        self._wheel = None  # wheel state references dropped heap events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6f} pending={self._live}>"


# ---------------------------------------------------------------------------
# Timer wheel (see repro/simulation/timerwheel.py for the design discussion)
# ---------------------------------------------------------------------------

DEFAULT_TICKS_PER_SECOND = 20
DEFAULT_RING_TICKS = 512

# Slots sort armed entries by arming sequence before firing; the seq is
# unique, so keying on it alone reproduces full-tuple ordering without
# ever comparing WheelTimer objects.
_ARM_ORDER = _itemgetter(0)


class WheelTimer:
    """Handle for one recurring registration on a :class:`TimerWheel`.

    API-compatible with :class:`~repro.simulation.timers.PeriodicTimer`
    (``ticks``, ``running``, ``period``, ``stop``, ``reschedule``) so
    processes can hold either interchangeably.
    """

    __slots__ = ("_wheel", "_period", "_callback", "_jitter", "_stopped", "_ticks")

    _wheel: "TimerWheel"
    _period: float
    _callback: Callable[[], Any]
    _jitter: Optional[Callable[[], float]]
    _stopped: bool
    _ticks: int

    def __init__(
        self,
        wheel: "TimerWheel",
        period: float,
        callback: Callable[[], Any],
        jitter: Optional[Callable[[], float]] = None,
    ) -> None:
        self._wheel = wheel
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._stopped = False
        self._ticks = 0

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    @property
    def running(self) -> bool:
        """True until :meth:`stop` is called."""
        return not self._stopped

    @property
    def period(self) -> float:
        return self._period

    def stop(self) -> None:
        """Stop the timer: O(1), no heap entry is touched.

        The slot the timer sits in fires regardless (it may be shared) and
        skips stopped entries; the registration is dropped there.
        """
        if not self._stopped:
            self._stopped = True
            self._wheel._live -= 1

    def reschedule(self, period: float) -> None:
        """Change the period; takes effect from the next firing onwards.

        Rejects periods the wheel cannot carry without rate distortion
        (sub-tick or off the tick grid) — callers needing those cadences
        must use a naive :class:`PeriodicTimer` instead, as the process
        layer does at registration time.
        """
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        if not self._wheel.supports_period(period):
            raise SimulationError(
                f"period {period} is not a whole number of wheel ticks "
                f"(tick={self._wheel.tick}); use a PeriodicTimer for off-grid rates"
            )
        self._period = period

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "stopped" if self._stopped else "running"
        return f"<WheelTimer period={self._period} ticks={self._ticks} {state}>"


class TimerWheel:
    """Two-level (ring + overflow) timer wheel over a :class:`Simulator`.

    Args:
        sim: the simulator to fire slots on.
        ticks_per_second: slot granularity; slot times are exact multiples
            of ``1 / ticks_per_second`` computed by division, so an integer
            ratio (20 -> 50 ms) keeps grid times bit-equal to literals.
        ring_ticks: level-0 window length in ticks; timers due further out
            park in the level-1 overflow and cascade in later.
    """

    _sim: Simulator
    _tps: int
    _tick: float
    _ring_ticks: int
    _ring: List[Optional[List[Tuple[int, WheelTimer]]]]
    _far: Dict[int, List[Tuple[int, int, WheelTimer]]]
    _armed_rotations: Set[int]
    _armed_slots: Set[int]
    _fired_through: int
    _arm_seq: int
    _live: int
    slot_events: int
    cascade_events: int

    def __init__(
        self,
        sim: Simulator,
        ticks_per_second: int = DEFAULT_TICKS_PER_SECOND,
        ring_ticks: int = DEFAULT_RING_TICKS,
    ) -> None:
        if ticks_per_second < 1:
            raise SimulationError(
                f"ticks_per_second must be a positive integer, got {ticks_per_second}"
            )
        if ring_ticks < 2:
            raise SimulationError(f"ring_ticks must be >= 2, got {ring_ticks}")
        self._sim = sim
        self._tps = ticks_per_second
        self._tick = 1.0 / ticks_per_second
        self._ring_ticks = ring_ticks
        # Level 0: ring of buckets, position = slot index % ring_ticks. A
        # bucket is a list of (arming_seq, timer); None when empty.
        self._ring = [None] * ring_ticks
        # Level 1: rotation -> [(slot_index, arming_seq, timer)].
        self._far = {}
        self._armed_rotations = set()
        self._armed_slots = set()
        self._fired_through = -1  # highest slot index already fired
        self._arm_seq = 0
        self._live = 0
        # Instrumentation: engine events consumed by the wheel.
        self.slot_events = 0
        self.cascade_events = 0

    # ----- public API -----------------------------------------------------

    @property
    def tick(self) -> float:
        """Slot granularity in seconds."""
        return self._tick

    @property
    def live_timers(self) -> int:
        """Registrations that are still running."""
        return self._live

    def every(
        self,
        period: float,
        callback: Callable[[], Any],
        initial_delay: Optional[float] = None,
        jitter: Optional[Callable[[], float]] = None,
    ) -> WheelTimer:
        """Register a recurring callback; mirrors :class:`PeriodicTimer`.

        Args:
            period: seconds between firings; must be positive. Periods
                shorter than one tick would alias to the tick — callers
                wanting sub-tick cadence (high-rate clients) should use the
                naive timer instead (see :meth:`supports_period`).
            callback: invoked with no arguments at every firing.
            initial_delay: delay before the first firing (default: one
                period). Quantized up to the next slot boundary.
            jitter: optional callable returning an additive offset applied
                independently to every firing before quantization.
        """
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        if initial_delay is not None and initial_delay < 0:
            raise SimulationError(f"initial delay must be >= 0, got {initial_delay}")
        timer = WheelTimer(self, period, callback, jitter)
        self._live += 1
        first = period if initial_delay is None else initial_delay
        if jitter is not None:
            first = max(0.0, first + jitter())
        self._insert(timer, self._sim.now + first)
        return timer

    def supports_period(self, period: float) -> bool:
        """Whether ``period`` can ride the wheel without rate distortion.

        Two classes of period are refused, and the process layer falls back
        to the naive per-event timer for them:

        * sub-tick periods, which would alias to the tick;
        * periods that are not a whole number of ticks — each firing
          re-quantizes *up* from its slot, so an off-grid period would be
          stretched toward the next boundary every cycle (0.26 s would
          effectively become 0.30 s), silently lowering calibrated rates.

        Grid-multiple periods re-quantize stably: the epsilon in
        :meth:`_slot_for` absorbs accumulated float dust, so the effective
        period is exact.
        """
        if period < self._tick:
            return False
        ticks = round(period * self._tps)
        return ticks >= 1 and abs(period - ticks / self._tps) <= 1e-9 * period

    # ----- internals ------------------------------------------------------

    def _slot_for(self, time: float) -> int:
        """First slot index whose boundary is >= ``time``.

        The epsilon absorbs float dust from summed periods (e.g.
        0.15 + 0.15 = 0.30000000000000004) so accumulated grid-aligned
        schedules stay on their intended slot.
        """
        scaled = time * self._tps
        slot = ceil(scaled - 1e-9 * (abs(scaled) + 1.0))
        if slot <= self._fired_through:
            # The boundary already fired (registration from inside its own
            # slot, or a zero delay at a fired boundary): defer one tick.
            slot = self._fired_through + 1
        return slot

    def _insert(self, timer: WheelTimer, time: float) -> Optional[List[Tuple[int, WheelTimer]]]:
        """Bucket ``timer`` for its next firing.

        Returns the ring bucket the timer landed in (for the re-arm memo
        in :meth:`_fire_slot`), or None when it parked in the overflow.
        """
        slot = self._slot_for(time)
        seq = self._arm_seq
        self._arm_seq = seq + 1
        # The ring window starts at the first boundary that can still fire.
        # ``_fired_through`` alone goes stale when the wheel idles (every
        # timer stopped, clock advanced by other events): anchoring the
        # base at the current time keeps near registrations in the ring and
        # keeps cascade times in the future.
        base = self._fired_through + 1
        scaled_now = self._sim._now * self._tps
        now_slot = ceil(scaled_now - 1e-9 * (abs(scaled_now) + 1.0))
        if now_slot > base:
            base = now_slot
        if slot < base + self._ring_ticks:
            position = slot % self._ring_ticks
            bucket = self._ring[position]
            if bucket is None:
                bucket = self._ring[position] = [(seq, timer)]
            else:
                bucket.append((seq, timer))
            if slot not in self._armed_slots:
                self._armed_slots.add(slot)
                self._arm_slot(slot)
            return bucket
        else:
            rotation = slot // self._ring_ticks
            entries = self._far.get(rotation)
            if entries is None:
                self._far[rotation] = [(slot, seq, timer)]
            else:
                entries.append((slot, seq, timer))
            if rotation not in self._armed_rotations:
                self._armed_rotations.add(rotation)
                # The cascade runs half a tick before the rotation's first
                # boundary so cascaded entries are bucketed (and their
                # slots armed) before any direct slot event of the same
                # rotation can fire.
                cascade_at = (rotation * self._ring_ticks - 0.5) / self._tps
                now = self._sim._now
                if cascade_at < now:
                    cascade_at = now
                self._sim.schedule_call(cascade_at, self._cascade, (rotation,))
            return None

    def _arm_slot(self, slot: int) -> None:
        # The clock can sit a hair *past* the boundary when _slot_for's
        # epsilon mapped a dust-contaminated time back onto it (e.g. a
        # registration from a callback at B + 1e-13); firing "now" instead
        # of raising keeps the slot time semantics (slot/tps) intact.
        fire_at = slot / self._tps
        now = self._sim._now
        if fire_at < now:
            fire_at = now
        self._sim.schedule_call(fire_at, self._fire_slot, (slot,))

    def _cascade(self, rotation: int) -> None:
        """Move one overflow rotation into the ring (level 1 -> level 0)."""
        self._armed_rotations.discard(rotation)
        entries = self._far.pop(rotation, None)
        self.cascade_events += 1
        if not entries:
            return
        ring = self._ring
        ring_ticks = self._ring_ticks
        for slot, seq, timer in entries:
            if timer._stopped:
                continue
            position = slot % ring_ticks
            bucket = ring[position]
            if bucket is None:
                ring[position] = [(seq, timer)]
            else:
                bucket.append((seq, timer))
            if slot not in self._armed_slots:
                self._armed_slots.add(slot)
                self._arm_slot(slot)

    def _fire_slot(self, slot: int) -> None:
        self._armed_slots.discard(slot)
        self._fired_through = slot
        self.slot_events += 1
        position = slot % self._ring_ticks
        bucket = self._ring[position]
        if bucket is None:
            return
        self._ring[position] = None
        if len(bucket) > 1:
            # Arming order == the (time, seq) order of the naive heap for
            # tick-aligned schedules; cascaded entries may have appended
            # out of order relative to direct ones. Arming seqs are unique,
            # so keying on them alone is full-tuple order.
            bucket.sort(key=_ARM_ORDER)
        slot_time = slot / self._tps
        # Re-arm memo: every non-jittered timer of the same period re-arms
        # at the same ``slot_time + period``, i.e. into the same bucket.
        # Computing the target slot once per period (instead of once per
        # timer) skips the _slot_for math for the whole herd of same-period
        # emitters sharing a slot, while assigning arming sequence numbers
        # in exactly the order the per-timer path would.
        memo_period = -1.0
        memo_bucket: Optional[List[Tuple[int, WheelTimer]]] = None
        for seq, timer in bucket:
            if timer._stopped:
                continue
            timer._ticks += 1
            timer._callback()
            if timer._stopped:
                continue
            period = timer._period
            if timer._jitter is None:
                if period == memo_period and memo_bucket is not None:
                    arm_seq = self._arm_seq
                    self._arm_seq = arm_seq + 1
                    memo_bucket.append((arm_seq, timer))
                    continue
                memo_bucket = self._insert(timer, slot_time + period)
                memo_period = period
                continue
            self._insert(timer, max(slot_time, slot_time + period + timer._jitter()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TimerWheel tick={self._tick} live={self._live} "
            f"armed_slots={len(self._armed_slots)} far_rotations={len(self._far)}>"
        )


# ---------------------------------------------------------------------------
# Traffic accounting (see repro/net/monitor.py for the design discussion)
# ---------------------------------------------------------------------------

# Sender-record slots. The overflow dict holds sparse far-future bins so a
# single record at a huge timestamp cannot force an O(timestamp) dense
# allocation (see record()).
_TX_BINS, _TX_KINDS, _TX_OVER = 0, 1, 2

# A dense bin list only grows contiguously by at most this many bins per
# record; larger jumps (idle gaps, stray far-future timers) go to the
# sparse overflow dict instead.
_MAX_DENSE_GROWTH = 4096


class TrafficTotals:
    """Whole-run aggregate counters."""

    messages: int
    bytes: int
    by_kind_messages: Dict[str, int]
    by_kind_bytes: Dict[str, int]

    def __init__(
        self,
        messages: int = 0,
        bytes: int = 0,
        by_kind_messages: Optional[Dict[str, int]] = None,
        by_kind_bytes: Optional[Dict[str, int]] = None,
    ) -> None:
        self.messages = messages
        self.bytes = bytes
        self.by_kind_messages = {} if by_kind_messages is None else by_kind_messages
        self.by_kind_bytes = {} if by_kind_bytes is None else by_kind_bytes

    def record(self, kind: str, size: int) -> None:
        self.messages += 1
        self.bytes += size
        self.by_kind_messages[kind] = self.by_kind_messages.get(kind, 0) + 1
        self.by_kind_bytes[kind] = self.by_kind_bytes.get(kind, 0) + size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficTotals):
            return NotImplemented
        return (
            self.messages == other.messages
            and self.bytes == other.bytes
            and self.by_kind_messages == other.by_kind_messages
            and self.by_kind_bytes == other.by_kind_bytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TrafficTotals(messages={self.messages}, bytes={self.bytes}, "
            f"by_kind_messages={self.by_kind_messages}, "
            f"by_kind_bytes={self.by_kind_bytes})"
        )


def _merge_rx_side(target: Dict[Any, Any], source: Dict[Any, Any]) -> None:
    """Fold one rx-side sparse counting structure into another (both sides
    are ``key -> size -> {node: messages}``; the outer key is a bin index
    or a kind string)."""
    for key, by_size in source.items():
        mine_by_size = target.get(key)
        if mine_by_size is None:
            target[key] = {size: dict(counts) for size, counts in by_size.items()}
            continue
        for size, counts in by_size.items():
            mine_counts = mine_by_size.get(size)
            if mine_counts is None:
                mine_by_size[size] = dict(counts)
            else:
                for name, seen in counts.items():
                    mine_counts[name] = mine_counts.get(name, 0) + seen


def _rebuild_monitor(
    bin_width: float,
    node: Dict[str, List[Any]],
    rx_bins: Dict[int, Dict[int, Dict[str, int]]],
    rx_kinds: Dict[str, Dict[int, Dict[str, int]]],
    last_time: float,
) -> "TrafficMonitor":
    """Pickle reconstructor for :class:`TrafficMonitor`.

    The monitor crosses shard-worker pipes by pickle; an explicit reduce
    keeps the wire format identical for the pure and compiled twins
    (native classes do not pickle by attribute dict).
    """
    monitor = TrafficMonitor(bin_width)
    monitor._node = node
    monitor._rx_bins = rx_bins
    monitor._rx_kinds = rx_kinds
    monitor._last_time = last_time
    return monitor


class TrafficMonitor:
    """Online per-node, per-direction byte binning.

    Args:
        bin_width: width of the accounting bins in seconds. The paper
            aggregates at 10 s for plotting; we bin at 1 s by default and
            re-aggregate in :mod:`repro.metrics.bandwidth`, which preserves
            the ability to compute both fine- and coarse-grained series.
    """

    __slots__ = ("bin_width", "_unit_bins", "_node", "_rx_bins", "_rx_kinds", "_last_time")

    bin_width: float
    _unit_bins: bool
    _node: Dict[str, List[Any]]
    _rx_bins: Dict[int, Dict[int, Dict[str, int]]]
    _rx_kinds: Dict[str, Dict[int, Dict[str, int]]]
    _last_time: float

    def __init__(self, bin_width: float = 1.0) -> None:
        if bin_width <= 0:
            raise ValueError(f"bin width must be positive, got {bin_width}")
        self.bin_width = bin_width
        self._unit_bins = bin_width == 1.0  # skip the division on the default
        # Sender side: node -> [tx_bins, tx_kinds, tx_over].
        self._node = {}
        # Receiver side (sparse counting; see module docstring). Plain
        # dicts rather than Counters: ``collections._count_elements`` (the
        # C helper behind Counter.update) takes its exact-dict fast path
        # and the single-message increment skips Counter's __missing__.
        # bin index -> wire size -> {node: messages}.
        self._rx_bins = {}
        # kind -> wire size -> {node: messages}.
        self._rx_kinds = {}
        self._last_time = 0.0

    def __reduce__(self) -> tuple:
        return (
            _rebuild_monitor,
            (self.bin_width, self._node, self._rx_bins, self._rx_kinds, self._last_time),
        )

    def record(self, time: float, src: str, dst: str, kind: str, size: int) -> None:
        """Account one message of ``size`` bytes sent at ``time``."""
        bin_index = int(time) if self._unit_bins else int(time / self.bin_width)
        node = self._node
        src_record = node.get(src)
        if src_record is None:
            src_record = node[src] = [[], {}, {}]
        bins = src_record[_TX_BINS]
        grow = bin_index + 1 - len(bins)
        if grow <= 0:
            bins[bin_index] += size
        elif grow <= _MAX_DENSE_GROWTH:
            bins.extend([0] * grow)
            bins[bin_index] += size
        else:
            # Far beyond the dense tail: sparse overflow, so one stray
            # far-future record cannot force an O(timestamp) allocation.
            overflow = src_record[_TX_OVER]
            overflow[bin_index] = overflow.get(bin_index, 0) + size
        kinds = src_record[_TX_KINDS]
        acc = kinds.get(kind)
        if acc is None:
            kinds[kind] = [1, size]
        else:
            acc[0] += 1
            acc[1] += size
        by_size = self._rx_bins.get(bin_index)
        if by_size is None:
            by_size = self._rx_bins[bin_index] = {}
        counts = by_size.get(size)
        if counts is None:
            by_size[size] = {dst: 1}
        else:
            counts[dst] = counts.get(dst, 0) + 1
        kind_by_size = self._rx_kinds.get(kind)
        if kind_by_size is None:
            kind_by_size = self._rx_kinds[kind] = {}
        counts = kind_by_size.get(size)
        if counts is None:
            kind_by_size[size] = {dst: 1}
        else:
            counts[dst] = counts.get(dst, 0) + 1
        if time > self._last_time:
            self._last_time = time

    def record_multicast(
        self, time: float, src: str, dsts: List[str], kind: str, size: int
    ) -> None:
        """Account one ``size``-byte message from ``src`` to each of ``dsts``.

        Byte-exact equivalent of calling :meth:`record` once per
        destination (the multicast and aggregated-traffic fast paths rely
        on this): the sender's tx side is bumped once with ``len(dsts)``
        messages and ``size * len(dsts)`` bytes, each receiver's rx side
        exactly as an individual record would — but through two C-level
        ``Counter.update`` calls, so the cost is independent of the
        fanout width (duplicate destinations count once each, like the
        per-copy loop).
        """
        if not dsts:
            return
        bin_index = int(time) if self._unit_bins else int(time / self.bin_width)
        node = self._node
        count = len(dsts)
        total = size * count
        src_record = node.get(src)
        if src_record is None:
            src_record = node[src] = [[], {}, {}]
        bins = src_record[_TX_BINS]
        grow = bin_index + 1 - len(bins)
        if grow <= 0:
            bins[bin_index] += total
        elif grow <= _MAX_DENSE_GROWTH:
            bins.extend([0] * grow)
            bins[bin_index] += total
        else:
            overflow = src_record[_TX_OVER]
            overflow[bin_index] = overflow.get(bin_index, 0) + total
        kinds = src_record[_TX_KINDS]
        acc = kinds.get(kind)
        if acc is None:
            kinds[kind] = [count, total]
        else:
            acc[0] += count
            acc[1] += total
        by_size = self._rx_bins.get(bin_index)
        if by_size is None:
            by_size = self._rx_bins[bin_index] = {}
        counts = by_size.get(size)
        if counts is None:
            counts = by_size[size] = {}
        _count_elements(counts, dsts)
        kind_by_size = self._rx_kinds.get(kind)
        if kind_by_size is None:
            kind_by_size = self._rx_kinds[kind] = {}
        counts = kind_by_size.get(size)
        if counts is None:
            counts = kind_by_size[size] = {}
        _count_elements(counts, dsts)
        if time > self._last_time:
            self._last_time = time

    def record_fanout(
        self, time: float, src: str, dsts: List[str], kind: str, size: int
    ) -> None:
        """Historical name from the aggregated-background PR; the multicast
        generalization made the vectorized record the common case. (A real
        delegating method rather than a class-body alias: native classes
        cannot re-expose a sibling method object under a second name.)"""
        self.record_multicast(time, src, dsts, kind, size)

    def merge_from(self, other: "TrafficMonitor") -> None:
        """Fold another monitor's accounting into this one, exactly.

        Every counter in both structures is an integer, so the merge is
        associative and bit-exact: merging the per-shard monitors of a
        process-sharded run reproduces the single-process monitor as long
        as each message was recorded on exactly one shard (sends record on
        the sender's owner shard — see docs/sharding.md).
        """
        if other.bin_width != self.bin_width:
            raise ValueError(
                "cannot merge monitors with different bin widths "
                f"({other.bin_width} vs {self.bin_width})"
            )
        node = self._node
        for name, src_record in other._node.items():
            mine = node.get(name)
            if mine is None:
                node[name] = [
                    list(src_record[_TX_BINS]),
                    {kind: list(acc) for kind, acc in src_record[_TX_KINDS].items()},
                    dict(src_record[_TX_OVER]),
                ]
                continue
            bins = mine[_TX_BINS]
            theirs = src_record[_TX_BINS]
            if len(theirs) > len(bins):
                bins.extend([0] * (len(theirs) - len(bins)))
            for index, size in enumerate(theirs):
                if size:
                    bins[index] += size
            kinds = mine[_TX_KINDS]
            for kind, (messages, size) in src_record[_TX_KINDS].items():
                acc = kinds.get(kind)
                if acc is None:
                    kinds[kind] = [messages, size]
                else:
                    acc[0] += messages
                    acc[1] += size
            overflow = mine[_TX_OVER]
            for index, size in src_record[_TX_OVER].items():
                overflow[index] = overflow.get(index, 0) + size
        _merge_rx_side(self._rx_bins, other._rx_bins)
        _merge_rx_side(self._rx_kinds, other._rx_kinds)
        if other._last_time > self._last_time:
            self._last_time = other._last_time

    @property
    def totals(self) -> TrafficTotals:
        """Whole-run totals, materialized lazily from the per-node records.

        Every message is counted exactly once on its sender's tx side, so
        summing tx kind stats across nodes reproduces the global totals
        without any dedicated per-message bookkeeping.
        """
        totals = TrafficTotals()
        by_kind_messages = totals.by_kind_messages
        by_kind_bytes = totals.by_kind_bytes
        for record in self._node.values():
            for kind, (messages, size) in record[_TX_KINDS].items():
                totals.messages += messages
                totals.bytes += size
                by_kind_messages[kind] = by_kind_messages.get(kind, 0) + messages
                by_kind_bytes[kind] = by_kind_bytes.get(kind, 0) + size
        return totals

    @property
    def last_time(self) -> float:
        """Time of the most recent recorded message."""
        return self._last_time

    def nodes(self) -> List[str]:
        """All node names that sent or received at least one message."""
        names = set(self._node)
        for by_size in self._rx_kinds.values():
            for counts in by_size.values():
                names.update(counts)
        return sorted(names)

    def node_totals(self, node: str) -> TrafficTotals:
        """Whole-run totals for one node (kinds prefixed ``tx:``/``rx:``)."""
        totals = TrafficTotals()
        record = self._node.get(node)
        if record is not None:
            for kind, (messages, size) in record[_TX_KINDS].items():
                totals.messages += messages
                totals.bytes += size
                totals.by_kind_messages["tx:" + kind] = messages
                totals.by_kind_bytes["tx:" + kind] = size
        for kind, by_size in self._rx_kinds.items():
            messages = 0
            received = 0
            for size, counts in by_size.items():
                seen = counts.get(node)
                if seen:
                    messages += seen
                    received += size * seen
            if messages:
                totals.messages += messages
                totals.bytes += received
                totals.by_kind_messages["rx:" + kind] = messages
                totals.by_kind_bytes["rx:" + kind] = received
        return totals

    def series(
        self,
        node: str,
        direction: str = "both",
        end_time: Optional[float] = None,
    ) -> List[float]:
        """Bytes per bin for ``node``; index i covers [i*w, (i+1)*w).

        Args:
            node: node name.
            direction: ``"tx"``, ``"rx"`` or ``"both"`` (sum).
            end_time: pad the series with zero bins up to this time, so idle
                tails (paper Fig. 6's 1500-2000 s window) appear explicitly.
        """
        if direction not in ("tx", "rx", "both"):
            raise ValueError(f"unknown direction {direction!r}")
        horizon = self._last_time if end_time is None else end_time
        n_bins = int(horizon / self.bin_width) + 1
        values = [0.0] * n_bins
        if direction != "rx":
            record = self._node.get(node)
            if record is not None:
                bins = record[_TX_BINS]
                for index in range(min(len(bins), n_bins)):
                    size = bins[index]
                    if size:
                        values[index] += size
                for index, size in record[_TX_OVER].items():
                    if index < n_bins:
                        values[index] += size
        if direction != "tx":
            for index, by_size in self._rx_bins.items():
                if index >= n_bins:
                    continue
                received = 0
                for size, counts in by_size.items():
                    seen = counts.get(node)
                    if seen:
                        received += size * seen
                if received:
                    values[index] += received
        return values

    def rate_series(
        self, node: str, direction: str = "both", end_time: Optional[float] = None
    ) -> List[float]:
        """Same as :meth:`series` but in bytes/second."""
        return [value / self.bin_width for value in self.series(node, direction, end_time)]

    def average_rate(
        self, node: str, direction: str = "both", start: float = 0.0, end: Optional[float] = None
    ) -> float:
        """Average bytes/second for ``node`` over ``[start, end]``."""
        series = self.series(node, direction, end_time=end)
        end = self._last_time if end is None else end
        if end <= start:
            return 0.0
        first = int(start / self.bin_width)
        last = int(end / self.bin_width)
        window = series[first : last + 1]
        return sum(window) / (end - start) if window else 0.0

    def network_total_bytes(self) -> int:
        """Total bytes carried by the network over the whole run."""
        return sum(
            size
            for record in self._node.values()
            for _, size in record[_TX_KINDS].values()
        )


# ---------------------------------------------------------------------------
# Latency sampling kernels (see repro/net/latency.py for the model classes)
# ---------------------------------------------------------------------------

# Same magic constant random.normalvariate uses; imported rather than
# recomputed so the kernels are bit-for-bit the stdlib's draws.
_NV_MAGICCONST: float = _random.NV_MAGICCONST  # type: ignore[attr-defined]


def make_lan_sampler(
    uniform: Callable[[], float], base: float, mu: float, sigma: float
) -> Callable[[str, str], float]:
    """Build the bound per-message sampler for :class:`~repro.net.latency.
    LanLatency`: ``base`` plus a lognormal draw.

    The loop replicates ``random.normalvariate``'s Kinderman-Monahan
    rejection sampling verbatim (same NV_MAGICCONST, same order of
    ``uniform()`` consumption), so the draw sequence and results are
    bit-for-bit those of ``rng.lognormvariate(mu, sigma)`` — the stdlib
    pair of call frames (lognormvariate -> normalvariate) costs more than
    the draw itself on this path.
    """
    nv_magic = _NV_MAGICCONST
    log_, exp_ = _log, _exp

    def sample(src: str, dst: str) -> float:
        while True:
            u1 = uniform()
            u2 = 1.0 - uniform()
            z = nv_magic * (u1 - 0.5) / u2
            if z * z / 4.0 <= -log_(u2):
                break
        return base + exp_(mu + z * sigma)

    return sample


def make_lan_batch_sampler(
    uniform: Callable[[], float], base: float, mu: float, sigma: float
) -> Callable[[str, Sequence[str]], List[float]]:
    """Batch twin of :func:`make_lan_sampler`: one draw per destination in
    destination order — the whole fanout's draws cost one call frame yet
    consume the RNG bit-for-bit like sequential ``sample()`` calls would.
    """
    nv_magic = _NV_MAGICCONST
    log_, exp_ = _log, _exp

    def sample_batch(src: str, dsts: Sequence[str]) -> List[float]:
        delays: List[float] = []
        append = delays.append
        for _ in dsts:
            while True:
                u1 = uniform()
                u2 = 1.0 - uniform()
                z = nv_magic * (u1 - 0.5) / u2
                if z * z / 4.0 <= -log_(u2):
                    break
            append(base + exp_(mu + z * sigma))
        return delays

    return sample_batch


# ---------------------------------------------------------------------------
# Link queueing kernel (see repro/net/link.py for the LinkModel config)
# ---------------------------------------------------------------------------

# link_enqueue sentinel returns: the packet was dropped instead of queued.
LINK_DROP_TAIL: float = -1.0
LINK_DROP_CODEL: float = -2.0


def link_enqueue(
    state: List[float],
    now: float,
    transfer: float,
    queue_limit: float,
    target: float,
    interval: float,
    max_p: float,
    ramp: float,
    uniform: Callable[[], float],
) -> float:
    """Admit one packet to a bottleneck link queue; return its drain time.

    ``state`` is the mutable per-link queue state ``[free_at, first_above,
    drop_count, dropping]`` (floats throughout so the list stays
    homogeneous for the compiled twin). ``now`` is when the packet reaches
    the bottleneck, ``transfer`` its serialization time (size/bandwidth).

    Semantics, in order:

    * The packet's queueing delay is ``max(free_at - now, 0)`` — time
      spent behind packets already serializing. If that exceeds
      ``queue_limit`` (the queue's capacity expressed in seconds of
      drain time) the packet is tail-dropped: return ``LINK_DROP_TAIL``,
      **no RNG consumed, no state mutated**.
    * CoDel-style AQM (only when ``target > 0``): a queueing delay below
      ``target`` resets the congestion episode; at or above ``target``
      the first such packet arms a deadline ``now + interval``, and once
      the deadline passes the link enters dropping state. While dropping,
      each packet consumes **exactly one** ``uniform()`` draw and is
      dropped with probability ``min(max_p, (drop_count + 1) / ramp)``
      (return ``LINK_DROP_CODEL``) — drop probability ramps up the
      longer the episode persists, mirroring CoDel's control law without
      its sqrt schedule.
    * Otherwise the packet is admitted: ``free_at`` advances to
      ``start + transfer``, which is returned as the drain time.

    The RNG contract the rest of the stack relies on: a disabled link
    (infinite ``queue_limit``, ``target <= 0``) consumes **zero** RNG and
    returns ``now + transfer`` — with ``transfer == 0`` it is a pure
    no-op, which is what keeps pre-link goldens bit-for-bit identical.
    """
    free_at = state[0]
    start = free_at if free_at > now else now
    wait = start - now
    if wait > queue_limit:
        return LINK_DROP_TAIL
    if target > 0.0:
        if wait < target:
            # Below target: the congestion episode (if any) ends.
            state[1] = 0.0
            state[2] = 0.0
            state[3] = 0.0
        else:
            if state[3] == 0.0:
                if state[1] == 0.0:
                    state[1] = now + interval
                elif now >= state[1]:
                    state[3] = 1.0
            if state[3] != 0.0:
                p = (state[2] + 1.0) / ramp
                if p > max_p:
                    p = max_p
                if uniform() < p:
                    state[2] = state[2] + 1.0
                    return LINK_DROP_CODEL
    end = start + transfer
    state[0] = end
    return end
