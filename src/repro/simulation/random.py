"""Named deterministic random streams.

Every stochastic component of the simulation (gossip target selection,
network jitter, workload permutations, ...) draws from its own named stream
derived from a single master seed. This keeps runs reproducible and makes
components statistically independent: adding a draw in one component does
not perturb the sequence seen by another.
"""

from __future__ import annotations

import hashlib
import random
from math import ceil, log
from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 so that nearby master seeds and similar names still yield
    uncorrelated child seeds.
    """
    payload = f"{master_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory and registry of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name``, creating it lazily."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self._master_seed, name))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent child registry (e.g. per experiment run)."""
        return RandomStreams(derive_seed(self._master_seed, f"spawn:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams


def sample_without(
    rng: random.Random, population: Sequence[T], k: int, exclude: Sequence[T] = ()
) -> List[T]:
    """Sample ``k`` distinct items from ``population`` excluding ``exclude``.

    This is the canonical gossip target selection: a peer picks ``fout``
    peers uniformly at random among the other peers. If fewer than ``k``
    candidates remain the whole candidate set is returned (in random order).
    """
    return sample_from(population, rng, k, exclude)


def sample_from(
    population: Sequence[T], rng: random.Random, k: int, exclude: Sequence[T] = ()
) -> List[T]:
    """:func:`sample_without` with the population first.

    The argument order exists so membership views can pre-bind their
    candidate lists with :func:`functools.partial` (a C-level call, no
    wrapper frame on the per-fanout path).
    """
    if exclude:
        excluded = set(exclude)
        candidates: Sequence[T] = [item for item in population if item not in excluded]
    else:
        # No exclusions: sample straight from the population without the
        # per-call copy (the copy dominated gossip target selection).
        candidates = population
    n = len(candidates)
    if k >= n:
        shuffled = list(candidates)
        rng.shuffle(shuffled)
        return shuffled
    # Inline of random.Random.sample (CPython 3.9+ algorithm) minus its
    # per-call ABC isinstance check and counts machinery, with
    # ``_randbelow_with_getrandbits`` inlined on top (one C ``getrandbits``
    # call per draw instead of a Python frame wrapping it). It MUST
    # consume ``rng.getrandbits`` bits exactly like rng.sample(candidates,
    # k) — gossip target selection is the single biggest RNG consumer and
    # the determinism contract pins the draw sequence bit-for-bit.
    getrandbits = rng.getrandbits
    result: List[T] = [None] * k  # type: ignore[list-item]
    setsize = 21
    if k > 5:
        setsize += 4 ** ceil(log(k * 3, 4))
    if n <= setsize:
        pool = list(candidates)
        for i in range(k):
            bound = n - i
            bits = bound.bit_length()
            j = getrandbits(bits)
            while j >= bound:
                j = getrandbits(bits)
            result[i] = pool[j]
            pool[j] = pool[bound - 1]
    else:
        selected: set = set()
        selected_add = selected.add
        bits = n.bit_length()
        for i in range(k):
            j = getrandbits(bits)
            while j >= n:
                j = getrandbits(bits)
            while j in selected:
                j = getrandbits(bits)
                while j >= n:
                    j = getrandbits(bits)
            selected_add(j)
            result[i] = candidates[j]
    return result
