"""Light-weight process (actor) base class.

A :class:`Process` is anything with an identity that lives on the simulator
and exchanges messages through a network: Fabric peers, orderers, clients.
It standardizes access to the clock, to named RNG streams scoped to the
process, and to timer management so processes can be shut down cleanly
(used by the fault-injection layer).
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Union

from repro.simulation.engine import EventHandle, Simulator
from repro.simulation.random import RandomStreams
from repro.simulation.timers import PeriodicTimer
from repro.simulation.timerwheel import WheelTimer

RecurringTimer = Union[PeriodicTimer, WheelTimer]


class Process:
    """Base class for simulated actors.

    Args:
        sim: shared simulator.
        name: globally unique process name (e.g. ``"peer-17"``).
        streams: the experiment's random stream registry; the process draws
            from streams namespaced by its own name.
    """

    def __init__(self, sim: Simulator, name: str, streams: RandomStreams) -> None:
        self.sim = sim
        self.name = name
        self._streams = streams
        self._timers: List[RecurringTimer] = []
        self._alive = True

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim._now  # friend access: one property call, not two

    @property
    def alive(self) -> bool:
        """False after :meth:`shutdown` (or a simulated crash)."""
        return self._alive

    def rng(self, purpose: str) -> random.Random:
        """A deterministic stream scoped to this process and ``purpose``."""
        return self._streams.stream(f"{self.name}:{purpose}")

    def after(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule a one-shot callback, skipped if the process has died."""

        def guarded(*inner_args: Any) -> None:
            if self._alive:
                callback(*inner_args)

        return self.sim.schedule(delay, guarded, *args)

    def every(
        self,
        period: float,
        callback: Callable[[], Any],
        initial_delay: Optional[float] = None,
        jitter_stream: Optional[str] = None,
        jitter_fraction: float = 0.0,
    ) -> RecurringTimer:
        """Register a periodic timer owned by this process.

        If ``jitter_stream`` is given, each tick is offset by a uniform
        draw in ``[-jitter_fraction, +jitter_fraction] * period`` from the
        named stream.

        When the simulator's timer wheel is enabled (the default) the
        registration lands on the shared wheel: same-tick firings across
        the whole deployment coalesce into single engine events, and
        :meth:`shutdown` cancels the registration in O(1) without touching
        the event heap. Sub-tick periods (high-rate client drivers) and
        wheel-disabled simulators fall back to the naive one-event-per-tick
        :class:`PeriodicTimer`.
        """
        jitter: Optional[Callable[[], float]] = None
        if jitter_stream is not None and jitter_fraction > 0:
            rng = self.rng(jitter_stream)
            amplitude = jitter_fraction * period

            def jitter() -> float:
                return rng.uniform(-amplitude, amplitude)

        def guarded() -> None:
            if self._alive:
                callback()

        sim = self.sim
        timer: RecurringTimer
        if sim.use_timer_wheel and sim.wheel.supports_period(period):
            timer = sim.wheel.every(period, guarded, initial_delay=initial_delay, jitter=jitter)
        else:
            timer = PeriodicTimer(sim, period, guarded, initial_delay=initial_delay, jitter=jitter)
        self._timers.append(timer)
        return timer

    def shutdown(self) -> None:
        """Stop all timers and mark the process dead (simulated crash)."""
        self._alive = False
        for timer in self._timers:
            timer.stop()
        self._timers.clear()

    def restart(self) -> None:
        """Mark the process alive again; subclasses re-arm their timers."""
        self._alive = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
