"""repro — Fair and Efficient Gossip in Hyperledger Fabric (ICDCS 2020).

A full reproduction of Berendea, Mercier, Onica and Rivière's paper: a
discrete-event simulation of Hyperledger Fabric's execute-order-validate
pipeline, both the original and the enhanced gossip dissemination modules,
the analytical model of the push phase, and the complete experiment harness
for every figure and table of the evaluation.

Quickstart::

    from repro import (
        DisseminationConfig, EnhancedGossipConfig, run_dissemination,
    )

    config = DisseminationConfig.scaled(gossip=EnhancedGossipConfig.paper_f4())
    result = run_dissemination(config)
    print(result.latency_summary())
"""

from repro.analysis import (
    carrying_capacity,
    imperfect_dissemination_probability,
    infect_and_die_distribution,
    ttl_for_target,
)
from repro.experiments import (
    ConflictExperimentConfig,
    DisseminationConfig,
    DisseminationResult,
    build_network,
    run_conflict_experiment,
    run_dissemination,
)
from repro.gossip import (
    EnhancedGossip,
    EnhancedGossipConfig,
    OriginalGossip,
    OriginalGossipConfig,
)
from repro.scenarios import (
    ScenarioSpec,
    SweepRunner,
    get_scenario,
    run_scenario,
    scenario_names,
)

__version__ = "1.0.0"

__all__ = [
    "ConflictExperimentConfig",
    "DisseminationConfig",
    "DisseminationResult",
    "EnhancedGossip",
    "EnhancedGossipConfig",
    "OriginalGossip",
    "OriginalGossipConfig",
    "ScenarioSpec",
    "SweepRunner",
    "__version__",
    "build_network",
    "carrying_capacity",
    "get_scenario",
    "imperfect_dissemination_probability",
    "infect_and_die_distribution",
    "run_conflict_experiment",
    "run_dissemination",
    "run_scenario",
    "scenario_names",
    "ttl_for_target",
]
