"""Simulated signatures.

A signature here is a deterministic MAC binding the signer's derived key to
the payload digest. This preserves the two checks Fabric's validation makes:
(1) the signature verifies against the claimed identity, and (2) tampering
with the payload breaks verification. It is *not* cryptographically secure
(no asymmetry), which is irrelevant for performance reproduction and keeps
the simulation dependency-free and fast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import hash_fields
from repro.crypto.identity import Identity

SIGNATURE_SIZE_BYTES = 72  # typical ECDSA-P256 DER signature size


@dataclass(frozen=True)
class Signature:
    """A signature over a payload digest by a named identity."""

    signer: str
    digest: str
    mac: str

    @property
    def size_bytes(self) -> int:
        return SIGNATURE_SIZE_BYTES


def sign(identity: Identity, payload_digest: str) -> Signature:
    """Sign a payload digest with the identity's derived key."""
    mac = hash_fields("mac", identity.signing_key, payload_digest)
    return Signature(signer=identity.name, digest=payload_digest, mac=mac)


def verify(identity: Identity, payload_digest: str, signature: Signature) -> bool:
    """Check a signature: correct signer, correct digest, valid MAC."""
    if signature.signer != identity.name:
        return False
    if signature.digest != payload_digest:
        return False
    expected = hash_fields("mac", identity.signing_key, payload_digest)
    return signature.mac == expected
