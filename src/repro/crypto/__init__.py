"""Crypto substrate: hashing, MSP identities, simulated signatures.

Fabric relies on a membership service provider (MSP) to certify node
identities, on SHA-256 hash chaining to link blocks, and on signatures over
endorsements and blocks. We implement real SHA-256 hashing (cheap and exact)
and a structurally faithful — but computationally simulated — signature
scheme: signatures are deterministic MACs binding (signer identity, payload
digest) so that verification checks the same properties Fabric checks,
without pulling in a heavyweight asymmetric crypto dependency.
"""

from repro.crypto.hashing import hash_bytes, hash_fields
from repro.crypto.identity import Identity, MembershipServiceProvider
from repro.crypto.signature import Signature, sign, verify

__all__ = [
    "Identity",
    "MembershipServiceProvider",
    "Signature",
    "hash_bytes",
    "hash_fields",
    "sign",
    "verify",
]
