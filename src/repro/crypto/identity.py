"""MSP-style identities.

In Fabric, a trusted membership service provider (MSP) certifies every
orderer and peer. The simulation keeps the structure: identities carry an
organization (MSP ID), a role, and a key seed from which their simulated
signing key derives. The :class:`MembershipServiceProvider` is the registry
used to validate that a signer is a known, certified identity — the property
the permissioned model depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.hashing import hash_fields

VALID_ROLES = ("peer", "orderer", "client")


@dataclass(frozen=True)
class Identity:
    """A certified network identity.

    Attributes:
        name: globally unique node name (e.g. ``"peer-12"``).
        organization: MSP ID of the owning organization.
        role: one of ``peer``, ``orderer``, ``client``.
        key_seed: seed of the simulated signing key (set by the MSP).
    """

    name: str
    organization: str
    role: str
    key_seed: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.role not in VALID_ROLES:
            raise ValueError(f"unknown role {self.role!r}; expected one of {VALID_ROLES}")

    @property
    def signing_key(self) -> str:
        """Derived (simulated) private signing key material."""
        return hash_fields("signing-key", self.name, self.organization, self.key_seed)


class MembershipServiceProvider:
    """Registry of certified identities (the trusted MSP of the paper)."""

    def __init__(self, domain: str = "fabric") -> None:
        self.domain = domain
        self._identities: Dict[str, Identity] = {}

    def enroll(self, name: str, organization: str, role: str) -> Identity:
        """Certify a new identity; names are unique across the network."""
        if name in self._identities:
            raise ValueError(f"identity {name!r} already enrolled")
        key_seed = hash_fields(self.domain, name, organization, role)
        identity = Identity(name=name, organization=organization, role=role, key_seed=key_seed)
        self._identities[name] = identity
        return identity

    def lookup(self, name: str) -> Optional[Identity]:
        return self._identities.get(name)

    def is_certified(self, name: str) -> bool:
        return name in self._identities

    def members(self, organization: Optional[str] = None, role: Optional[str] = None) -> List[Identity]:
        """All identities, optionally filtered by org and/or role."""
        result = []
        for identity in self._identities.values():
            if organization is not None and identity.organization != organization:
                continue
            if role is not None and identity.role != role:
                continue
            result.append(identity)
        return sorted(result, key=lambda ident: ident.name)

    def organizations(self) -> List[str]:
        return sorted({identity.organization for identity in self._identities.values()})

    def __len__(self) -> int:
        return len(self._identities)
