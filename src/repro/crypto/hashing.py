"""SHA-256 hashing helpers used for block chaining and digests."""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

HASH_SIZE_BYTES = 32


def hash_bytes(data: bytes) -> str:
    """Hex SHA-256 digest of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def hash_fields(*fields: Any) -> str:
    """Hash a tuple of primitive fields with unambiguous framing.

    Each field is rendered with its type tag and length so that
    ``hash_fields("ab", "c")`` differs from ``hash_fields("a", "bc")``.
    """
    hasher = hashlib.sha256()
    for value in fields:
        encoded = _encode(value)
        hasher.update(type(value).__name__.encode("ascii"))
        hasher.update(len(encoded).to_bytes(8, "big"))
        hasher.update(encoded)
    return hasher.hexdigest()


def hash_many(items: Iterable[str]) -> str:
    """Order-sensitive hash of a sequence of hex digests (Merkle-ish root)."""
    hasher = hashlib.sha256()
    for item in items:
        hasher.update(item.encode("ascii"))
    return hasher.hexdigest()


def _encode(value: Any) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, bool):
        return b"\x01" if value else b"\x00"
    if isinstance(value, int):
        return value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
    if isinstance(value, float):
        return repr(value).encode("ascii")
    if value is None:
        return b""
    raise TypeError(f"cannot hash field of type {type(value).__name__}")
