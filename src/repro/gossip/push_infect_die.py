"""Fabric's original infect-and-die push component.

When a peer receives a block for the first time *via the push path* (from
the ordering service or another peer's push), it becomes infected: the block
enters a small buffer which is flushed to ``fout`` random peers when full or
after the ``t_push`` timer (Fabric default: 10 ms) — then the peer "dies"
for that block and never pushes it again. Blocks obtained through pull or
recovery are NOT pushed onward (paper §III-A).

The buffer batching is faithful to Fabric: all blocks flushed together go to
the *same* ``fout`` targets, which is precisely the randomness bias the
paper later removes in the enhanced protocol.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.gossip.base import bind_multicast
from repro.gossip.messages import BlockPush
from repro.gossip.view import OrganizationView
from repro.ledger.block import Block


class InfectAndDiePush:
    """The buffered, infect-and-die push of Fabric v1.2.

    Args:
        host: the gossip host (peer adapter).
        view: membership view used for target sampling.
        fout: push fan-out.
        t_push: buffer flush delay; 0 pushes immediately without batching.
        buffer_max: flush early when the buffer reaches this many blocks.
        on_push: optional instrumentation hook ``(block, targets) -> None``.
    """

    def __init__(
        self,
        host,
        view: OrganizationView,
        fout: int,
        t_push: float,
        buffer_max: int = 10,
        on_push: Optional[Callable[[Block, List[str]], None]] = None,
    ) -> None:
        self.host = host
        self.view = view
        self.fout = fout
        self.t_push = t_push
        self.buffer_max = buffer_max
        self._rng = host.rng("push-targets")
        self._multicast = bind_multicast(host)
        self._buffer: List[Block] = []
        self._flush_pending = False
        self._on_push = on_push
        self.blocks_pushed = 0

    def on_first_reception(self, block: Block) -> None:
        """Infect this peer with ``block``; schedules exactly one push."""
        if self.t_push <= 0:
            self._push([block])
            return
        self._buffer.append(block)
        if len(self._buffer) >= self.buffer_max:
            self._flush()
        elif not self._flush_pending:
            self._flush_pending = True
            self.host.after(self.t_push, self._on_timer)

    def _on_timer(self) -> None:
        if self._flush_pending:
            self._flush()

    def _flush(self) -> None:
        self._flush_pending = False
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        self._push(batch)

    def _push(self, blocks: List[Block]) -> None:
        targets = self.view.sample_org(self._rng, self.fout)
        multicast = self._multicast
        for block in blocks:
            # One shared BlockPush per block across the fanout (receivers
            # only read fields), multicast as a single pooled network event.
            multicast(targets, BlockPush(block, counter=0))
            self.blocks_pushed += 1
            if self._on_push is not None:
                self._on_push(block, targets)
