"""Membership view: who a peer may gossip with.

Fabric gossip operates on a complete graph within an organization — every
peer knows the identity of every other peer of its org (certified by the
MSP) — and block dissemination is, for trust reasons, restricted to peers of
the same organization. Recovery, by contrast, may consult peers of the whole
channel (paper §III-A).
"""

from __future__ import annotations

import sys
from functools import partial
from typing import Dict, List, Sequence

from repro.simulation.random import sample_from


class OrganizationView:
    """The static membership view handed to a peer's gossip module.

    Args:
        self_name: the owning peer.
        org_peers: all peers of the owning peer's organization (including
            the owner; it is excluded from sampling automatically).
        channel_peers: all peers of the channel (any organization).
        leader: the org's leader peer (receives blocks from orderers).
    """

    def __init__(
        self,
        self_name: str,
        org_peers: Sequence[str],
        channel_peers: Sequence[str],
        leader: str,
    ) -> None:
        if self_name not in org_peers:
            raise ValueError(f"{self_name!r} not part of its own organization view")
        if leader not in org_peers:
            raise ValueError(f"leader {leader!r} not part of the organization")
        # Interned names: every peer name flowing out of a view (gossip
        # targets, monitor keys, handler lookups) compares by pointer first.
        intern = sys.intern
        self.self_name = intern(self_name)
        self.leader = intern(leader)
        self._org_others: List[str] = [intern(name) for name in org_peers if name != self_name]
        self._org_peers: List[str] = [intern(name) for name in org_peers]
        self._channel_others: List[str] = [intern(name) for name in channel_peers if name != self_name]
        # Pre-bound samplers (C-level partial call, no wrapper frame):
        # target selection runs once per gossip fanout, which makes these
        # two of the hottest calls in the simulator.
        self.sample_org = partial(sample_from, self._org_others)
        self.sample_channel = partial(sample_from, self._channel_others)

    @property
    def org_size(self) -> int:
        """Number of peers in the organization (including self)."""
        return len(self._org_peers)

    @property
    def org_others(self) -> List[str]:
        """The other peers of the organization (gossip candidates)."""
        return list(self._org_others)

    @property
    def channel_others(self) -> List[str]:
        """All other peers of the channel (recovery candidates)."""
        return list(self._channel_others)

    @property
    def is_leader(self) -> bool:
        return self.self_name == self.leader

    # ``sample_org(rng, k, exclude=())`` — k distinct random org peers,
    # excluding self — and ``sample_channel(rng, k, exclude=())`` — k
    # distinct random channel peers (recovery is cross-org) — are bound as
    # instance partials in __init__; see the comment there.

    # ----- runtime membership (churn engine) ---------------------------

    def add_member(self, name: str, same_org: bool) -> None:
        """Admit ``name`` into this view's sampling populations.

        Idempotent. The bound samplers hold the population *list objects*,
        so in-place appends are immediately visible to every future draw
        without rebinding — which is what makes runtime joins cheap.
        """
        name = sys.intern(name)
        if name == self.self_name:
            return
        if same_org:
            if name not in self._org_others:
                self._org_others.append(name)
            if name not in self._org_peers:
                self._org_peers.append(name)
        if name not in self._channel_others:
            self._channel_others.append(name)

    def discard_member(self, name: str) -> None:
        """Remove ``name`` from this view's sampling populations.

        Idempotent; a no-op for names not present. Leaders are protected
        upstream (the churn engine refuses to churn a leader).
        """
        for population in (self._org_others, self._org_peers, self._channel_others):
            try:
                population.remove(name)
            except ValueError:
                pass


def build_views(
    org_members: Dict[str, List[str]], leaders: Dict[str, str]
) -> Dict[str, OrganizationView]:
    """Construct the per-peer views for a multi-organization channel.

    Args:
        org_members: organization name -> member peer names.
        leaders: organization name -> leader peer name.

    Returns:
        peer name -> its :class:`OrganizationView`.
    """
    channel_peers = [name for members in org_members.values() for name in members]
    views: Dict[str, OrganizationView] = {}
    for org, members in org_members.items():
        leader = leaders[org]
        for name in members:
            views[name] = OrganizationView(
                self_name=name,
                org_peers=members,
                channel_peers=channel_peers,
                leader=leader,
            )
    return views
