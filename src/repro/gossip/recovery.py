"""Recovery (anti-entropy) component, common to both modules.

Peers periodically gossip state-info metadata carrying their ledger height
— across the whole channel, not only their organization (paper §III-A).
Every ``t_recovery`` seconds (default 10 s) a peer compares its height with
the highest observed one and, if behind, requests the consecutive missing
blocks (in bounded batches) from one of the most advanced peers.

In a stable network with a well-tuned push phase, recovery never fires for
dissemination (the paper observed exactly this); it remains essential after
crashes, outages, or when a peer joins.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gossip.base import bind_multicast
from repro.gossip.messages import RecoveryRequest, RecoveryResponse, StateInfo
from repro.gossip.view import OrganizationView
from repro.ledger.block import Block


class RecoveryComponent:
    """State-info gossip + batch catch-up."""

    def __init__(
        self,
        host,
        view: OrganizationView,
        t_recovery: float,
        t_state_info: float,
        state_info_fanout: int,
        batch_max: int,
        deliver,
    ) -> None:
        """
        Args:
            host: the gossip host (peer adapter).
            view: membership view (state info crosses organizations).
            t_recovery: recovery check period.
            t_state_info: state info broadcast period.
            state_info_fanout: peers contacted per state-info round.
            batch_max: maximum blocks fetched per recovery request.
            deliver: callable ``(block, via) -> bool``.
        """
        self.host = host
        self.view = view
        self.t_recovery = t_recovery
        self.t_state_info = t_state_info
        self.state_info_fanout = state_info_fanout
        self.batch_max = batch_max
        self._deliver = deliver
        self._rng = host.rng("recovery")
        self._multicast = bind_multicast(host)
        self.known_heights: Dict[str, int] = {}
        self.recovery_requests_sent = 0
        self.blocks_recovered = 0

    def start(self) -> None:
        """Arm state-info gossip and the recovery check, phase-staggered."""
        state_phase = self._rng.uniform(0.0, self.t_state_info)
        self.host.every(self.t_state_info, self._broadcast_state_info, initial_delay=state_phase)
        recovery_phase = self._rng.uniform(0.0, self.t_recovery)
        self.host.every(self.t_recovery, self._check, initial_delay=recovery_phase)

    # ----- state info ----------------------------------------------------

    def _broadcast_state_info(self) -> None:
        targets = self.view.sample_channel(self._rng, self.state_info_fanout)
        if targets:
            # One shared StateInfo for the whole fanout (receivers only
            # read the height), multicast as a single pooled network event.
            self._multicast(targets, StateInfo(self.host.ledger_height))

    def on_state_info(self, src: str, message: StateInfo) -> None:
        previous = self.known_heights.get(src, 0)
        if message.height > previous:
            self.known_heights[src] = message.height

    # ----- catch-up -------------------------------------------------------

    def _check(self) -> None:
        if not self.known_heights:
            return
        best_height = max(self.known_heights.values())
        my_height = self.host.ledger_height
        if best_height <= my_height:
            return
        # Ask one of the most advanced peers for the next missing batch.
        best_peers = [name for name, height in self.known_heights.items() if height == best_height]
        target = self._rng.choice(best_peers)
        to_number = min(best_height, my_height + self.batch_max)
        self.host.send(target, RecoveryRequest(my_height, to_number))
        self.recovery_requests_sent += 1

    def on_recovery_request(self, src: str, message: RecoveryRequest) -> None:
        blocks: List[Block] = []
        for number in range(message.from_number, message.to_number):
            block = self.host.get_block(number)
            if block is None:
                break  # only consecutive blocks are useful to the requester
            blocks.append(block)
            if len(blocks) >= self.batch_max:
                break
        if blocks:
            self.host.send(src, RecoveryResponse(blocks))

    def on_recovery_response(self, src: str, message: RecoveryResponse) -> None:
        for block in message.blocks:
            if self._deliver(block, via="recovery"):
                self.blocks_recovered += 1
