"""Gossip module interface and host protocol.

A gossip module is plugged into a peer (its *host*). The host supplies
identity, networking, timers, RNG streams, and the ledger-facing operations
(deliver / serve blocks); the module implements the dissemination policy.
This mirrors Fabric's layering, where the gossip component is a separate
package from the ledger and validation machinery, and is what lets the
experiments swap the original module for the enhanced one with one config
switch.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Protocol

from repro.ledger.block import Block
from repro.net.message import Message
from repro.gossip.view import OrganizationView


class GossipHost(Protocol):
    """What a gossip module needs from its hosting peer."""

    name: str

    @property
    def now(self) -> float: ...

    def send(self, dst: str, message: Message) -> None:
        """Send a gossip message to another peer."""

    def multicast(self, dsts: List[str], message: Message) -> None:
        """Send one shared message to several peers (fanout fast path).

        Must be semantically identical to calling :meth:`send` once per
        destination in order — components rely on that equivalence for
        the determinism contract (see :meth:`repro.net.network.Network.multicast`).
        """

    def rng(self, purpose: str) -> random.Random:
        """Deterministic RNG stream scoped to the host and purpose."""

    def after(self, delay: float, callback: Callable, *args) -> object:
        """One-shot timer."""

    def every(self, period: float, callback: Callable[[], None], **kwargs) -> object:
        """Periodic timer."""

    def deliver_block(self, block: Block, via: str) -> bool:
        """Hand a received full block to the ledger layer.

        Returns True if the block was previously unknown to this peer
        (first reception), False for duplicates.
        """

    def get_block(self, number: int) -> Optional[Block]:
        """A block this peer holds (committed or buffered), for serving."""

    @property
    def ledger_height(self) -> int:
        """Committed chain height."""

    def known_block_numbers(self, window: int) -> List[int]:
        """Recent block numbers this peer holds (pull digest contents)."""


def bind_multicast(host: GossipHost) -> Optional[Callable[[List[str], Message], None]]:
    """The host's fanout entry point, bound once at construction.

    Hosts implementing the full protocol (peers) expose ``multicast``,
    which every gossip fanout routes through; minimal test doubles that
    only implement ``send`` get a per-copy fallback loop with identical
    semantics. ``host.multicast``/``host.send`` resolve liveness
    themselves, so the binding stays valid across crash/recover.
    """
    multicast = getattr(host, "multicast", None)
    if multicast is not None:
        return multicast
    send = getattr(host, "send", None)
    if send is None:
        return None  # construction-only doubles never fan out

    def fanout(dsts: List[str], message: Message) -> None:
        for dst in dsts:
            send(dst, message)

    return fanout


class GossipModule:
    """Base class for the original and enhanced gossip modules."""

    def __init__(self, host: GossipHost, view: OrganizationView) -> None:
        self.host = host
        self.view = view
        # Bound once for the per-message fast path; ``host.send`` resolves
        # liveness itself, so the binding stays valid across crash/recover.
        # (getattr: construction-only test doubles may omit ``send``.)
        self._send = getattr(host, "send", None)
        self._multicast = bind_multicast(host)
        self._started = False

    def start(self) -> None:
        """Arm periodic components. Idempotent."""
        if self._started:
            return
        self._started = True
        self._start_components()

    def _start_components(self) -> None:
        raise NotImplementedError

    def on_block_from_orderer(self, block: Block) -> None:
        """Entry point on the leader peer for blocks from the ordering
        service."""
        raise NotImplementedError

    def handle(self, src: str, message: Message) -> bool:
        """Process an incoming gossip message.

        Returns True if the message type was recognized and consumed.
        """
        raise NotImplementedError

    # ----- helpers shared by both modules ------------------------------

    def _deliver(self, block: Block, via: str) -> bool:
        """Deliver to the host ledger; returns first-reception flag."""
        return self.host.deliver_block(block, via)
