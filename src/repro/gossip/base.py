"""Gossip module interface and host protocol.

A gossip module is plugged into a peer (its *host*). The host supplies
identity, networking, timers, RNG streams, and the ledger-facing operations
(deliver / serve blocks); the module implements the dissemination policy.
This mirrors Fabric's layering, where the gossip component is a separate
package from the ledger and validation machinery, and is what lets the
experiments swap the original module for the enhanced one with one config
switch.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Protocol

from repro.ledger.block import Block
from repro.net.message import Message
from repro.gossip.view import OrganizationView


class GossipHost(Protocol):
    """What a gossip module needs from its hosting peer."""

    name: str

    @property
    def now(self) -> float: ...

    def send(self, dst: str, message: Message) -> None:
        """Send a gossip message to another peer."""

    def rng(self, purpose: str) -> random.Random:
        """Deterministic RNG stream scoped to the host and purpose."""

    def after(self, delay: float, callback: Callable, *args) -> object:
        """One-shot timer."""

    def every(self, period: float, callback: Callable[[], None], **kwargs) -> object:
        """Periodic timer."""

    def deliver_block(self, block: Block, via: str) -> bool:
        """Hand a received full block to the ledger layer.

        Returns True if the block was previously unknown to this peer
        (first reception), False for duplicates.
        """

    def get_block(self, number: int) -> Optional[Block]:
        """A block this peer holds (committed or buffered), for serving."""

    @property
    def ledger_height(self) -> int:
        """Committed chain height."""

    def known_block_numbers(self, window: int) -> List[int]:
        """Recent block numbers this peer holds (pull digest contents)."""


class GossipModule:
    """Base class for the original and enhanced gossip modules."""

    def __init__(self, host: GossipHost, view: OrganizationView) -> None:
        self.host = host
        self.view = view
        # Bound once for the per-message fast path; ``host.send`` resolves
        # liveness itself, so the binding stays valid across crash/recover.
        # (getattr: construction-only test doubles may omit ``send``.)
        self._send = getattr(host, "send", None)
        self._started = False

    def start(self) -> None:
        """Arm periodic components. Idempotent."""
        if self._started:
            return
        self._started = True
        self._start_components()

    def _start_components(self) -> None:
        raise NotImplementedError

    def on_block_from_orderer(self, block: Block) -> None:
        """Entry point on the leader peer for blocks from the ordering
        service."""
        raise NotImplementedError

    def handle(self, src: str, message: Message) -> bool:
        """Process an incoming gossip message.

        Returns True if the message type was recognized and consumed.
        """
        raise NotImplementedError

    # ----- helpers shared by both modules ------------------------------

    def _deliver(self, block: Block, via: str) -> bool:
        """Deliver to the host ledger; returns first-reception flag."""
        return self.host.deliver_block(block, via)
