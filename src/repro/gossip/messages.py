"""Gossip wire messages with faithful sizes.

Data blocks (~160 KB) dominate traffic; digests and metadata are tens of
bytes plus the network envelope. Sizes follow Fabric's protobuf encodings
closely enough for the bandwidth reproduction: a block digest is a block
number plus a hash; state info carries a height and a channel id.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.net.message import Message
from repro.ledger.block import Block

DIGEST_ENTRY_SIZE = 48  # block number + truncated hash + framing
STATE_INFO_SIZE = 96  # height, channel MAC, timestamp, identity
_PUSH_DIGEST_PAYLOAD = DIGEST_ENTRY_SIZE + 8  # + counter field


class BlockPush(Message):
    """A full data block pushed to a peer.

    ``counter`` is the infect-upon-contagion hop counter of the enhanced
    protocol; the original protocol ignores it (always 0). ``requested``
    distinguishes digest-solicited transfers from unsolicited forwards —
    the fault-injection layer uses it to model adversaries that withhold
    forwards but still answer explicit requests.
    """

    __slots__ = ("block", "counter", "requested", "_payload")

    def __init__(self, block: Block, counter: int = 0, requested: bool = False) -> None:
        super().__init__()
        self.block = block
        self.counter = counter
        self.requested = requested
        # Cached at construction: one instance is shared across a fanout,
        # so the size lookup runs once instead of once per target.
        self._payload = block.size_bytes() + 8  # block + counter field

    def payload_size(self) -> int:
        return self._payload


class PushDigest(Message):
    """Enhanced push: announce availability of ``(block, counter)``."""

    __slots__ = ("block_number", "block_hash", "counter")

    def __init__(self, block_number: int, block_hash: str, counter: int) -> None:
        super().__init__()
        self.block_number = block_number
        self.block_hash = block_hash
        self.counter = counter

    def payload_size(self) -> int:
        return _PUSH_DIGEST_PAYLOAD


class PushRequest(Message):
    """Enhanced push: ask the digest sender for the full block."""

    __slots__ = ("block_number", "counter")

    def __init__(self, block_number: int, counter: int) -> None:
        super().__init__()
        self.block_number = block_number
        self.counter = counter

    def payload_size(self) -> int:
        return 16


class PullDigestRequest(Message):
    """Original pull, phase 1: ask a peer for digests of recent blocks."""

    __slots__ = ()

    def payload_size(self) -> int:
        return 16


class PullDigestResponse(Message):
    """Original pull, phase 2: the block numbers the responder holds."""

    __slots__ = ("block_numbers",)

    def __init__(self, block_numbers: Sequence[int]) -> None:
        super().__init__()
        self.block_numbers = tuple(block_numbers)

    def payload_size(self) -> int:
        return 16 + DIGEST_ENTRY_SIZE * len(self.block_numbers)


class PullBlockRequest(Message):
    """Original pull, phase 3: request the blocks the requester lacks."""

    __slots__ = ("block_numbers",)

    def __init__(self, block_numbers: Sequence[int]) -> None:
        super().__init__()
        self.block_numbers = tuple(block_numbers)

    def payload_size(self) -> int:
        return 16 + 8 * len(self.block_numbers)


class PullBlockResponse(Message):
    """Original pull, phase 4: the requested full blocks."""

    __slots__ = ("blocks",)

    def __init__(self, blocks: Sequence[Block]) -> None:
        super().__init__()
        self.blocks = tuple(blocks)

    def payload_size(self) -> int:
        return 16 + sum(block.size_bytes() for block in self.blocks)


class StateInfo(Message):
    """Metadata gossip: the sender's ledger height (drives recovery)."""

    __slots__ = ("height",)

    def __init__(self, height: int) -> None:
        super().__init__()
        self.height = height

    def payload_size(self) -> int:
        return STATE_INFO_SIZE


class RecoveryRequest(Message):
    """Anti-entropy: request consecutive blocks [from_number, to_number)."""

    __slots__ = ("from_number", "to_number")

    def __init__(self, from_number: int, to_number: int) -> None:
        super().__init__()
        if to_number < from_number:
            raise ValueError(f"invalid recovery range [{from_number}, {to_number})")
        self.from_number = from_number
        self.to_number = to_number

    def payload_size(self) -> int:
        return 24


class RecoveryResponse(Message):
    """Anti-entropy: a batch of consecutive full blocks."""

    __slots__ = ("blocks",)

    def __init__(self, blocks: Sequence[Block]) -> None:
        super().__init__()
        self.blocks = tuple(blocks)

    def payload_size(self) -> int:
        return 16 + sum(block.size_bytes() for block in self.blocks)


class MembershipAlive(Message):
    """Background membership/metadata traffic (calibrated idle floor)."""

    __slots__ = ("size",)

    def __init__(self, size: int) -> None:
        super().__init__()
        self.size = size

    def payload_size(self) -> int:
        return self.size


GOSSIP_MESSAGE_TYPES = (
    BlockPush,
    PushDigest,
    PushRequest,
    PullDigestRequest,
    PullDigestResponse,
    PullBlockRequest,
    PullBlockResponse,
    StateInfo,
    RecoveryRequest,
    RecoveryResponse,
    MembershipAlive,
)


def block_messages_kinds() -> List[str]:
    """Message kinds that carry full blocks (for bandwidth breakdowns)."""
    return ["BlockPush", "PullBlockResponse", "RecoveryResponse"]
