"""Infect-upon-contagion push with TTL counters and push digests.

This is the paper's core contribution (§IV). Every block travels with a hop
counter ``r`` initialized at 0. When a peer receives the *exact pair*
``(block, k)`` for the first time, it forwards the pair ``(block, k+1)`` to
``fout`` peers chosen uniformly at random — even if it already held the
block under a different counter — and the dissemination stops once counters
reach the agreed ``TTL``. Per-pair forwarding keeps the theoretical
branching process alive long enough to reach all peers with probability
``1 - pe`` (appendix analysis in :mod:`repro.analysis.pe`).

To avoid the communication blow-up of late rounds, where almost every peer
is informed (Fig. 11 ablation), hops beyond ``ttl_direct`` announce a small
digest first and only transfer the full block on request; with digests the
full block crosses the wire only ``n + o(n)`` times. Two bookkeeping rules
keep that bound honest:

* a peer keeps at most one block request in flight (digests arrive in
  bursts while the first transfer is still on the wire; re-requesting on
  each would multiply full-block traffic);
* a peer forwards a pair only once it *holds* the block — pairs learned
  through digests while the transfer is pending are queued and flushed on
  arrival, and requests received meanwhile are served on arrival. This
  also guarantees digest receivers can always obtain the block from the
  digest's sender.

The single in-flight request is also the protocol's soft spot against
withholding peers (§VII): a request landing on a teaser would stall until
the anti-entropy recovery component rescues it. The request path is
therefore hardened with an *active* retry ladder: every request arms a
timer (``request_timeout``, backed off by ``retry_backoff`` per attempt);
on expiry the peer re-requests from a **different** advertised holder —
holders are remembered in digest arrival order, and the first untried one
is picked, so the rotation is deterministic and draws no randomness (and
hence composes with process sharding). After ``request_retries`` retries
the in-flight slot is released, so a later digest (or recovery) can take
over — the bounded ladder never sacrifices liveness. Counters distinguish
stalls rescued by a retry from those the recovery component had to repair.

The paper also sets ``t_push = 0`` for data blocks: Fabric's 10 ms buffer
merges pairs of the same block with different counters and sends them to a
single target sample, which biases the randomness and degrades the
probability guarantee. An optional buffer is kept here for the ablation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.gossip.base import bind_multicast
from repro.gossip.messages import BlockPush, PushDigest, PushRequest
from repro.gossip.view import OrganizationView
from repro.ledger.block import Block

# Pair keys pack (block number, counter) into one int so the dedup check —
# run once per received pair or digest, the hottest gossip code path — is a
# single flat-set probe instead of a per-block dict of sets. Counters are
# bounded by the TTL (tens in practice); 20 bits leave room far beyond any
# configured TTL while block numbers occupy the upper bits.
_PAIR_SHIFT = 20


class _InflightRequest:
    """Retry state of one outstanding block request."""

    __slots__ = ("counter", "attempts", "tried", "generation")

    def __init__(self, counter: int, target: str) -> None:
        self.counter = counter
        self.attempts = 0
        self.tried = [target]
        # Bumped on every (re-)send; a pending timer whose generation no
        # longer matches is stale and must not fire a retry.
        self.generation = 0


class InfectUponContagionPush:
    """The enhanced push component.

    Args:
        host: the gossip host (peer adapter).
        view: membership view.
        fout: fan-out per first-reception of a pair.
        ttl: stop forwarding once the outgoing counter would exceed this.
        ttl_direct: up to this counter value blocks are pushed in full
            without a digest round-trip (collisions are rare early).
        use_digests: Fig. 11 ablation switch.
        t_push: optional buffer timer; the paper's protocol uses 0.
        on_forward: instrumentation hook ``(block_number, counter, targets)``.
        request_timeout: base per-request timeout before retrying against
            a different digest holder; ``0`` disables the retry ladder.
        request_retries: retries per block before the in-flight slot is
            released (abandoned requests fall back to later digests or
            the recovery component).
        retry_backoff: multiplicative timeout growth per attempt.
    """

    REQUEST_RETRY_TIMEOUT = 0.5  # default base timeout of the retry ladder

    def __init__(
        self,
        host,
        view: OrganizationView,
        fout: int,
        ttl: int,
        ttl_direct: int,
        use_digests: bool = True,
        t_push: float = 0.0,
        on_forward: Optional[Callable[[int, int, List[str]], None]] = None,
        request_timeout: float = REQUEST_RETRY_TIMEOUT,
        request_retries: int = 2,
        retry_backoff: float = 2.0,
    ) -> None:
        self.host = host
        self.view = view
        self.fout = fout
        self.ttl = ttl
        self.ttl_direct = ttl_direct
        self.use_digests = use_digests
        self.t_push = t_push
        self.request_timeout = request_timeout
        self.request_retries = request_retries
        self.retry_backoff = retry_backoff
        self._rng = host.rng("iuc-push-targets")
        # Hot path: bound once, not per message (getattr: construction-only
        # test doubles may omit ``send``).
        self._send = getattr(host, "send", None)
        self._multicast = bind_multicast(host)
        # get_block runs once per digest reception — the dominant message
        # class at scale — so the host hop is resolved once here.
        self._get_block = getattr(host, "get_block", None)
        self._on_forward = on_forward
        # Packed (block << _PAIR_SHIFT | counter) keys already seen.
        self._seen_pairs: Set[int] = set()
        # Blocks with an outstanding PushRequest: block number -> retry state.
        self._inflight_requests: Dict[int, _InflightRequest] = {}
        # Peers that advertised a block we do not hold yet, in digest
        # arrival order (deduplicated) — the deterministic retry rotation.
        self._digest_holders: Dict[int, List[str]] = {}
        # Pairs learned via digest while the block transfer is pending:
        # block number -> counters to forward once the block arrives.
        self._pending_pairs: Dict[int, List[int]] = defaultdict(list)
        # Requests received while we do not have the block yet:
        # block number -> [(requester, counter)].
        self._pending_serves: Dict[int, List[Tuple[str, int]]] = defaultdict(list)
        # Buffered pairs awaiting a t_push flush (ablation mode only).
        self._buffer: List[Tuple[Block, int]] = []
        self._flush_pending = False
        self.pairs_received = 0
        self.pairs_forwarded = 0
        self.digests_sent = 0
        self.full_pushes_sent = 0
        self.requests_sent = 0
        self.requests_retried = 0
        self.request_timeouts = 0
        self.requests_abandoned = 0
        self.stalls_rescued_by_retry = 0

    # ----- receiving pairs ----------------------------------------------

    def on_pair(self, block: Block, counter: int) -> bool:
        """Process reception of the full-block pair ``(block, counter)``.

        Returns True if the pair was new. Forwards the new pair, flushes
        pairs queued while this block's transfer was in flight, and serves
        peers whose requests arrived before we held the block.
        """
        number = block.number
        state = self._inflight_requests.pop(number, None)
        if state is not None and state.attempts > 0:
            # The block arrived after at least one retry re-targeted the
            # request: a stall the ladder resolved without recovery.
            self.stalls_rescued_by_retry += 1
        self._digest_holders.pop(number, None)
        seen = self._seen_pairs
        key = (number << _PAIR_SHIFT) | counter
        is_new = key not in seen
        if is_new:
            seen.add(key)
            self.pairs_received += 1
            self._forward(block, counter)
        if number in self._pending_pairs:
            # Queued counters were marked seen when the digest arrived but
            # never forwarded; a counter can never be both queued and newly
            # forwarded above, so every queued pair forwards exactly once.
            for queued_counter in self._pending_pairs.pop(number):
                self._forward(block, queued_counter)
        if number in self._pending_serves:
            for requester, requested_counter in self._pending_serves.pop(number):
                self.host.send(requester, BlockPush(block, counter=requested_counter, requested=True))
                self.full_pushes_sent += 1
        return is_new

    def on_digest(self, src: str, message: PushDigest) -> None:
        """A digest announces the pair ``(block, counter)``.

        If we hold the block this behaves exactly like a pair reception
        (minus the payload). Otherwise we request the block — one request
        in flight per block, hardened by the retry ladder: the sender is
        remembered as a holder, and should the transfer stall past the
        timeout, the retry rotates to a different advertised holder.
        """
        number = message.block_number
        counter = message.counter
        block = self._get_block(number)
        seen = self._seen_pairs
        key = (number << _PAIR_SHIFT) | counter
        if block is not None:
            if key not in seen:
                seen.add(key)
                self.pairs_received += 1
                self._forward(block, counter)
            return
        holders = self._digest_holders.get(number)
        if holders is None:
            holders = self._digest_holders[number] = []
        if src not in holders:
            holders.append(src)
        state = self._inflight_requests.get(number)
        if state is None:
            state = self._inflight_requests[number] = _InflightRequest(counter, src)
            self.host.send(src, PushRequest(number, counter))
            self.requests_sent += 1
            self._arm_request_timer(number, state)
        if key not in seen:
            seen.add(key)
            self.pairs_received += 1
            self._pending_pairs[number].append(counter)

    def _arm_request_timer(self, number: int, state: _InflightRequest) -> None:
        if self.request_timeout <= 0:
            return
        delay = self.request_timeout * (self.retry_backoff ** state.attempts)
        self.host.after(delay, self._on_request_timeout, number, state.generation)

    def _on_request_timeout(self, number: int, generation: int) -> None:
        """The in-flight request for ``number`` outlived its timeout.

        Retries deterministically against the first *untried* digest
        holder in arrival order (falling back to a round-robin over all
        holders when every one was tried) — no RNG draw, so sharded and
        single-process runs retry identically. Exhausted ladders release
        the slot: a later digest re-requests from scratch, and recovery
        remains the terminal safety net.
        """
        state = self._inflight_requests.get(number)
        if state is None or state.generation != generation:
            return  # resolved, superseded, or already re-armed
        if self._get_block(number) is not None:
            del self._inflight_requests[number]
            return
        self.request_timeouts += 1
        if state.attempts >= self.request_retries:
            del self._inflight_requests[number]
            self.requests_abandoned += 1
            return
        holders = self._digest_holders.get(number, [])
        target = None
        for holder in holders:
            if holder not in state.tried:
                target = holder
                break
        if target is None:
            if not holders:
                del self._inflight_requests[number]
                self.requests_abandoned += 1
                return
            target = holders[state.attempts % len(holders)]
        state.attempts += 1
        state.generation += 1
        state.tried.append(target)
        self.host.send(target, PushRequest(number, state.counter))
        self.requests_sent += 1
        self.requests_retried += 1
        self._arm_request_timer(number, state)

    def on_request(self, src: str, message: PushRequest) -> None:
        """Serve a full block requested after one of our digests."""
        block = self.host.get_block(message.block_number)
        if block is None:
            # We advertised the pair but are still waiting for the block
            # ourselves (possible only in pathological interleavings);
            # serve as soon as it lands rather than dropping the request.
            self._pending_serves[message.block_number].append((src, message.counter))
            return
        self.host.send(src, BlockPush(block, counter=message.counter, requested=True))
        self.full_pushes_sent += 1

    # ----- forwarding ------------------------------------------------------

    def _forward(self, block: Block, received_counter: int) -> None:
        next_counter = received_counter + 1
        if next_counter > self.ttl:
            return
        if self.t_push > 0:
            self._buffer.append((block, received_counter))
            if not self._flush_pending:
                self._flush_pending = True
                self.host.after(self.t_push, self._flush)
            return
        # Inline of the former _send_pair: sample + transmit without an
        # extra frame on the per-pair hot path.
        self._transmit(block, next_counter, self.view.sample_org(self._rng, self.fout))

    def _flush(self) -> None:
        """Ablation mode: Fabric-style buffered flush.

        All buffered pairs are sent to a *single* target sample — the
        biased behaviour the paper eliminates with ``t_push = 0``.
        """
        self._flush_pending = False
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        targets = self.view.sample_org(self._rng, self.fout)
        for block, received_counter in batch:
            self._transmit(block, received_counter + 1, targets)

    def _transmit(self, block: Block, counter: int, targets: List[str]) -> None:
        # One message instance is shared across the fanout: gossip messages
        # are immutable after construction and receivers only read fields,
        # so per-target copies would differ in nothing but allocation cost.
        # The whole fanout goes out as one multicast (one pooled network
        # event, vectorized accounting, per-destination physics intact).
        if self.use_digests and counter > self.ttl_direct:
            self._multicast(targets, PushDigest(block.number, block.block_hash, counter))
            self.digests_sent += len(targets)
        else:
            self._multicast(targets, BlockPush(block, counter=counter))
            self.full_pushes_sent += len(targets)
        self.pairs_forwarded += 1
        if self._on_forward is not None:
            self._on_forward(block.number, counter, targets)

    # ----- bookkeeping ----------------------------------------------------

    def mark_seen(self, block_number: int, counter: int) -> None:
        """Record the pair as seen without forwarding (leader initiation)."""
        self._seen_pairs.add((block_number << _PAIR_SHIFT) | counter)

    def forget_before(self, block_number: int) -> None:
        """Drop pair-tracking state for old blocks (memory bound)."""
        threshold = block_number << _PAIR_SHIFT
        self._seen_pairs = {key for key in self._seen_pairs if key >= threshold}
        for mapping in (self._pending_pairs, self._pending_serves, self._digest_holders):
            stale = [number for number in mapping if number < block_number]
            for number in stale:
                del mapping[number]
        stale_requests = [
            number for number in self._inflight_requests if number < block_number
        ]
        for number in stale_requests:
            del self._inflight_requests[number]
