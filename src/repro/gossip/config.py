"""Configuration of both gossip modules, with the paper's defaults."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RecoveryConfig:
    """Recovery (anti-entropy) parameters, shared by both modules.

    Fabric defaults: recovery every 10 s; state info (ledger height
    metadata) gossiped every 4 s to a few peers; missing blocks are fetched
    in bounded consecutive batches.
    """

    t_recovery: float = 10.0
    t_state_info: float = 4.0
    state_info_fanout: int = 3
    batch_max: int = 10


@dataclass
class OriginalGossipConfig:
    """Fabric v1.2 defaults (paper §III-A, §V-B).

    Attributes:
        fout: infect-and-die push fan-out (default 3).
        t_push: push buffer flush timer (default 10 ms).
        push_buffer_max: flush the buffer early past this many blocks.
        fin: pull fan-out (default 3).
        t_pull: pull period (default 4 s).
        pull_digest_window: how many recent blocks a pull digest covers.
        recovery: anti-entropy parameters.
    """

    fout: int = 3
    t_push: float = 0.010
    push_buffer_max: int = 10
    fin: int = 3
    t_pull: float = 4.0
    pull_digest_window: int = 20
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)

    def __post_init__(self) -> None:
        if self.fout < 1 or self.fin < 0:
            raise ValueError("fan-outs must be positive")
        if self.t_push < 0 or self.t_pull <= 0:
            raise ValueError("invalid timers")


@dataclass
class EnhancedGossipConfig:
    """The paper's enhanced module (paper §IV, §V-C).

    The two evaluated configurations, both achieving pe <= 1e-6 at n=100:
    ``fout=4, ttl=9, ttl_direct=2`` and ``fout=2, ttl=19, ttl_direct=3``.

    Attributes:
        fout: infect-upon-contagion fan-out.
        ttl: hop counter limit; pairs ``(block, counter)`` with
            ``counter == ttl`` are not forwarded further.
        ttl_direct: up to this counter value blocks are pushed in full
            without a preceding digest (collisions are rare early on).
        leader_fanout: how many peers the leader forwards a new block to
            (the randomized-initial-gossiper enhancement uses 1; the
            Fig. 10 ablation uses ``fout``).
        use_digests: Fig. 11 ablation switch; False pushes full blocks for
            every hop.
        t_push: push buffer timer; the paper sets 0 for data blocks to keep
            the per-pair randomness unbiased.
        request_timeout: base timeout of the block-request retry ladder —
            a stalled transfer is re-requested from a *different* digest
            holder after this long (backed off per attempt); 0 disables
            retries and leaves stalls to the recovery component alone.
        request_retries: retries per block before the in-flight slot is
            released back to later digests / recovery.
        retry_backoff: multiplicative timeout growth per retry attempt.
        recovery: anti-entropy parameters (pull is removed, recovery kept).
    """

    fout: int = 4
    ttl: int = 9
    ttl_direct: int = 2
    leader_fanout: int = 1
    use_digests: bool = True
    t_push: float = 0.0
    request_timeout: float = 0.5
    request_retries: int = 2
    retry_backoff: float = 2.0
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)

    def __post_init__(self) -> None:
        if self.fout < 1 or self.leader_fanout < 1:
            raise ValueError("fan-outs must be positive")
        if self.ttl < 1:
            raise ValueError("ttl must be >= 1")
        if self.ttl_direct < 0 or self.ttl_direct > self.ttl:
            raise ValueError("require 0 <= ttl_direct <= ttl")
        if self.t_push < 0:
            raise ValueError("t_push must be >= 0")
        if self.request_timeout < 0:
            raise ValueError("request_timeout must be >= 0")
        if self.request_retries < 0:
            raise ValueError("request_retries must be >= 0")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")

    @classmethod
    def paper_f4(cls) -> "EnhancedGossipConfig":
        """First evaluated configuration: fout=4, TTL=9, TTLdirect=2."""
        return cls(fout=4, ttl=9, ttl_direct=2)

    @classmethod
    def paper_f2(cls) -> "EnhancedGossipConfig":
        """Second evaluated configuration: fout=2, TTL=19, TTLdirect=3."""
        return cls(fout=2, ttl=19, ttl_direct=3)


@dataclass
class BackgroundTrafficConfig:
    """Calibrated background metadata traffic (idle floor of Fig. 6).

    Defaults give each peer ~0.2 MB/s of transmitted background bytes, i.e.
    ~0.4 MB/s rx+tx per peer in a homogeneous network — the idle level of
    the paper's bandwidth figures.

    The default granularity is 25 KB every 250 ms, four times finer than
    the original 100 KB/s aggregate: closer to the many-small-messages
    shape of real membership/deliver chatter at the same byte rate. The
    finer cadence is affordable because emissions ride the shared timer
    wheel and, with ``aggregate`` on, each fanout coalesces into a single
    batched network event whose monitor accounting is byte-for-byte
    identical to per-copy sends.
    """

    enabled: bool = True
    period: float = 0.25
    fanout: int = 2
    message_size: int = 25_000
    aggregate: bool = True

    @property
    def per_peer_tx_rate(self) -> float:
        """Average transmitted bytes/second per peer."""
        if not self.enabled or self.period <= 0:
            return 0.0
        return self.fanout * self.message_size / self.period
