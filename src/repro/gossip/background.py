"""Calibrated background metadata traffic.

A real Fabric peer continuously exchanges membership heart-beats, state
info, discovery and deliver-service chatter; the paper measures this idle
floor at ~0.4 MB/s per peer (rx+tx, Fig. 6 after t=1500 s). The simulator
reproduces it with a periodic emitter per peer whose rate is set by
:class:`repro.gossip.config.BackgroundTrafficConfig`. Granularity is coarse
(one aggregate message per period per target) to keep the event count
tractable; only the byte rate matters for the figures.
"""

from __future__ import annotations

from repro.gossip.config import BackgroundTrafficConfig
from repro.gossip.messages import MembershipAlive
from repro.gossip.view import OrganizationView


class BackgroundTraffic:
    """Per-peer periodic emitter of aggregate metadata bytes."""

    def __init__(self, host, view: OrganizationView, config: BackgroundTrafficConfig) -> None:
        self.host = host
        self.view = view
        self.config = config
        self._rng = host.rng("background")
        self.messages_sent = 0

    def start(self) -> None:
        if not self.config.enabled:
            return
        phase = self._rng.uniform(0.0, self.config.period)
        self.host.every(self.config.period, self._emit, initial_delay=phase)

    def _emit(self) -> None:
        targets = self.view.sample_channel(self._rng, self.config.fanout)
        for target in targets:
            self.host.send(target, MembershipAlive(self.config.message_size))
            self.messages_sent += 1
