"""Calibrated background metadata traffic.

A real Fabric peer continuously exchanges membership heart-beats, state
info, discovery and deliver-service chatter; the paper measures this idle
floor at ~0.4 MB/s per peer (rx+tx, Fig. 6 after t=1500 s). The simulator
reproduces it with a periodic emitter per peer whose rate is set by
:class:`repro.gossip.config.BackgroundTrafficConfig`; only the byte rate
matters for the figures.

Two scaling mechanisms keep the event count tractable at paper scale:

* the emitters ride the shared hierarchical timer wheel (via
  ``host.every``), so the per-peer periodic ticks coalesce into shared
  slot events instead of one heap entry per peer per period;
* with ``config.aggregate`` (the default) each emission's fanout of
  :class:`MembershipAlive` copies goes through
  :meth:`~repro.net.network.Network.send_aggregate` — one batched network
  event per (source, period) tick whose :class:`TrafficMonitor` accounting
  is byte-for-byte identical to the unbatched per-copy stream.

Hosts without a ``network`` attribute exposing ``send_aggregate`` (unit
test doubles) and runs with ``aggregate=False`` (the perf harness measures
the event-count reduction against this) fall back to per-copy sends.
"""

from __future__ import annotations

from repro.gossip.config import BackgroundTrafficConfig
from repro.gossip.messages import MembershipAlive
from repro.gossip.view import OrganizationView


class BackgroundTraffic:
    """Per-peer periodic emitter of aggregate metadata bytes."""

    def __init__(self, host, view: OrganizationView, config: BackgroundTrafficConfig) -> None:
        self.host = host
        self.view = view
        self.config = config
        self._rng = host.rng("background")
        self.messages_sent = 0
        # Aggregation needs the host's network; send_aggregate itself is
        # deliberately NOT pre-bound (same convention as ``network.send``:
        # integration tests wrap send methods by assignment and must
        # observe background traffic).
        self._network = getattr(host, "network", None) if config.aggregate else None
        # Per-emission constants, hoisted out of the periodic hot path. The
        # message instance is shared across emissions: MembershipAlive is
        # immutable, receivers discard it unread, and only its byte size
        # reaches the monitor.
        self._fanout = config.fanout
        self._message = MembershipAlive(config.message_size)

    def start(self) -> None:
        if not self.config.enabled:
            return
        phase = self._rng.uniform(0.0, self.config.period)
        self.host.every(self.config.period, self._emit, initial_delay=phase)

    def _emit(self) -> None:
        targets = self.view.sample_channel(self._rng, self._fanout)
        if not targets:
            return
        send_aggregate = getattr(self._network, "send_aggregate", None)
        if send_aggregate is not None:
            send_aggregate(self.host.name, targets, self._message)
            self.messages_sent += len(targets)
            return
        send = self.host.send
        for target in targets:
            send(target, self._message)
            self.messages_sent += 1
