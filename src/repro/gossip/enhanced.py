"""The paper's enhanced gossip module.

Combines the four enhancements of Table I:

1. infect-upon-contagion push with TTL counters;
2. push digests beyond ``ttl_direct``;
3. randomized initial gossiper: the leader forwards each block, in full and
   with counter 0, to ``leader_fanout`` (default 1) random peers — on
   expectation this spreads the initiation of gossip uniformly over the
   other ``n - 1`` peers and removes the leader's ``fout``× bandwidth
   burden;
4. no pull component; recovery is retained unchanged as the safety net.
"""

from __future__ import annotations

from repro.gossip.base import GossipModule
from repro.gossip.config import EnhancedGossipConfig
from repro.gossip.messages import (
    BlockPush,
    PushDigest,
    PushRequest,
    RecoveryRequest,
    RecoveryResponse,
    StateInfo,
)
from repro.gossip.push_infect_contagion import InfectUponContagionPush
from repro.gossip.recovery import RecoveryComponent
from repro.gossip.view import OrganizationView
from repro.ledger.block import Block
from repro.net.message import Message


class EnhancedGossip(GossipModule):
    """Enhanced dissemination (paper §IV)."""

    def __init__(self, host, view: OrganizationView, config: EnhancedGossipConfig) -> None:
        super().__init__(host, view)
        self.config = config
        self.push = InfectUponContagionPush(
            host,
            view,
            fout=config.fout,
            ttl=config.ttl,
            ttl_direct=config.ttl_direct,
            use_digests=config.use_digests,
            t_push=config.t_push,
            request_timeout=config.request_timeout,
            request_retries=config.request_retries,
            retry_backoff=config.retry_backoff,
        )
        self.recovery = RecoveryComponent(
            host,
            view,
            t_recovery=config.recovery.t_recovery,
            t_state_info=config.recovery.t_state_info,
            state_info_fanout=config.recovery.state_info_fanout,
            batch_max=config.recovery.batch_max,
            deliver=self._deliver,
        )
        self._leader_rng = host.rng("leader-initial-gossiper")
        # Bound once: BlockPush handling calls it on every reception.
        # (getattr: construction-only test doubles may omit it.)
        self._deliver_block = getattr(host, "deliver_block", None)
        # Exact-type dispatch table: one dict probe per message instead of
        # an isinstance chain (message classes are final by convention).
        self._dispatch = {
            BlockPush: self._on_block_push,
            PushDigest: self.push.on_digest,
            PushRequest: self.push.on_request,
            StateInfo: self.recovery.on_state_info,
            RecoveryRequest: self.recovery.on_recovery_request,
            RecoveryResponse: self.recovery.on_recovery_response,
        }

    def _start_components(self) -> None:
        self.recovery.start()

    def on_block_from_orderer(self, block: Block) -> None:
        """Leader entry point: delegate initiation to random peer(s).

        With ``leader_fanout = 1`` the leader only transmits each block
        once; the receiving peer becomes the initial gossiper (it receives
        the pair ``(block, 0)`` and forwards ``(block, 1)``). The Fig. 10
        ablation sets ``leader_fanout = fout``, making the leader initiate
        the dissemination itself like any infected peer would.
        """
        self._deliver(block, via="orderer")
        # The leader marks the pair (block, 0) as seen so a later echo of
        # the epidemic does not make it act as a second initial gossiper,
        # but it does NOT forward: initiation is delegated.
        self.push.mark_seen(block.number, 0)
        targets = self.view.sample_org(self._leader_rng, self.config.leader_fanout)
        self._multicast(targets, BlockPush(block, counter=0))

    def _on_block_push(self, src: str, message: BlockPush) -> None:
        block = message.block
        self._deliver_block(block, "push")
        self.push.on_pair(block, message.counter)

    def handle(self, src: str, message: Message) -> bool:
        handler = self._dispatch.get(type(message))
        if handler is None:
            return False
        handler(src, message)
        return True
