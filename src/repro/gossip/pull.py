"""Fabric's original pull component.

Every ``t_pull`` seconds (default 4 s) a peer contacts ``fin`` (default 3)
random peers of its organization with a digest request; each responds with
the block numbers it holds in a recent window; the initiator then requests
every block it lacks — each missing block from a single advertiser — and
the advertisers reply with the full blocks. Blocks obtained through pull do
not trigger the push component (paper §III-A).

The pull period is what produces the heavy latency tail of the original
module: a peer missed by the push phase waits, on average, half a pull
period (2 s) and possibly several periods before obtaining the block.
"""

from __future__ import annotations

from typing import List

from repro.gossip.base import bind_multicast
from repro.gossip.messages import (
    PullBlockRequest,
    PullBlockResponse,
    PullDigestRequest,
    PullDigestResponse,
)
from repro.gossip.view import OrganizationView
from repro.ledger.block import Block


class PullComponent:
    """Periodic digest-based pull."""

    def __init__(
        self,
        host,
        view: OrganizationView,
        fin: int,
        t_pull: float,
        digest_window: int,
        deliver,
    ) -> None:
        """
        Args:
            host: the gossip host (peer adapter).
            view: membership view.
            fin: number of peers contacted per pull round.
            t_pull: pull period in seconds.
            digest_window: number of recent blocks covered by a digest.
            deliver: callable ``(block, via) -> bool`` handing received
                blocks to the ledger layer.
        """
        self.host = host
        self.view = view
        self.fin = fin
        self.t_pull = t_pull
        self.digest_window = digest_window
        self._deliver = deliver
        self._rng = host.rng("pull-targets")
        self._multicast = bind_multicast(host)
        # Blocks already requested in the current round, so the initiator
        # does not fetch the same block from several advertisers.
        self._requested_this_round: set = set()
        self.rounds = 0
        self.blocks_obtained = 0

    def start(self) -> None:
        """Arm the periodic pull with a random phase (unsynchronized
        clocks: peers' pull rounds are uniformly staggered)."""
        phase = self._rng.uniform(0.0, self.t_pull)
        self.host.every(self.t_pull, self._round, initial_delay=phase)

    def _round(self) -> None:
        self.rounds += 1
        self._requested_this_round = set()
        targets = self.view.sample_org(self._rng, self.fin)
        if targets:
            # Stateless request: one shared instance, one multicast event.
            self._multicast(targets, PullDigestRequest())

    # ----- responder side ---------------------------------------------

    def on_digest_request(self, src: str) -> None:
        numbers = self.host.known_block_numbers(self.digest_window)
        self.host.send(src, PullDigestResponse(numbers))

    def on_block_request(self, src: str, message: PullBlockRequest) -> None:
        blocks: List[Block] = []
        for number in message.block_numbers:
            block = self.host.get_block(number)
            if block is not None:
                blocks.append(block)
        if blocks:
            self.host.send(src, PullBlockResponse(blocks))

    # ----- initiator side ----------------------------------------------

    def on_digest_response(self, src: str, message: PullDigestResponse) -> None:
        missing = [
            number
            for number in message.block_numbers
            if self.host.get_block(number) is None
            and number >= self.host.ledger_height
            and number not in self._requested_this_round
        ]
        if not missing:
            return
        self._requested_this_round.update(missing)
        self.host.send(src, PullBlockRequest(sorted(missing)))

    def on_block_response(self, src: str, message: PullBlockResponse) -> None:
        for block in message.blocks:
            if self._deliver(block, via="pull"):
                self.blocks_obtained += 1
