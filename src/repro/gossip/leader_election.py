"""Gossip-based leader election within an organization.

Fabric peers elect, per organization, the *leader peer* that receives new
blocks from the ordering service and initiates their dissemination (the
role at the root of both gossip modules). Fabric supports static leaders
and dynamic election; this module implements the dynamic variant as Fabric
does: the alive peer with the smallest identity is the leader, leadership
is asserted through periodic heartbeat declarations, and a peer claims
leadership when it has heard no heartbeat from a smaller-id alive peer for
an election timeout.

The orderer is rerouted through a :class:`LeaderRegistry` that tracks each
organization's current claim, so the block flow survives a leader crash
with a bounded interruption (one election timeout + one recovery round for
blocks ordered during the gap).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.gossip.base import bind_multicast
from repro.net.message import Message


class LeadershipHeartbeat(Message):
    """Periodic leadership declaration within the organization."""

    __slots__ = ("term",)

    def __init__(self, term: int) -> None:
        super().__init__()
        self.term = term

    def payload_size(self) -> int:
        return 64


class LeaderRegistry:
    """Tracks the current leader claim per organization.

    The ordering service consults this registry on every block send, so an
    election taking effect between two blocks reroutes the next block.
    """

    def __init__(self, initial: Optional[Dict[str, str]] = None) -> None:
        self._leaders: Dict[str, str] = dict(initial or {})
        self._listeners: List[Callable[[str, str], None]] = []

    def leader_of(self, org: str) -> Optional[str]:
        return self._leaders.get(org)

    def claim(self, org: str, peer: str) -> None:
        if self._leaders.get(org) != peer:
            self._leaders[org] = peer
            for listener in self._listeners:
                listener(org, peer)

    def subscribe(self, listener: Callable[[str, str], None]) -> None:
        """``listener(org, new_leader)`` fires on every change."""
        self._listeners.append(listener)

    def snapshot(self) -> Dict[str, str]:
        return dict(self._leaders)


class LeaderElection:
    """Smallest-alive-id election driven by heartbeats.

    Args:
        host: the gossip host (peer adapter).
        view: organization view (election is org-local).
        org: organization name, for registry claims.
        registry: shared :class:`LeaderRegistry`.
        heartbeat_period: leader declaration period.
        election_timeout: silence from better-ranked peers before claiming
            leadership; must exceed the heartbeat period.
    """

    def __init__(
        self,
        host,
        view,
        org: str,
        registry: LeaderRegistry,
        heartbeat_period: float = 1.0,
        election_timeout: float = 3.0,
    ) -> None:
        if election_timeout <= heartbeat_period:
            raise ValueError("election timeout must exceed the heartbeat period")
        self.host = host
        self.view = view
        self.org = org
        self.registry = registry
        self.heartbeat_period = heartbeat_period
        self.election_timeout = election_timeout
        self.is_leader = False
        self.term = 0
        # Last heartbeat time per better-ranked (smaller-id) peer.
        self._last_heard: Dict[str, float] = {}
        self.heartbeats_sent = 0
        self.elections_won = 0
        # Rank-staggered takeover: when the leader dies, every follower's
        # timeout would expire in the same round and all would claim at
        # once (the worst-ranked claim landing last at the registry). Each
        # peer therefore waits an extra heartbeat period per rank step, so
        # the best-ranked candidate claims first and its heartbeat
        # suppresses the rest.
        ordered = sorted([self.host.name] + list(self.view.org_others))
        self._rank = ordered.index(self.host.name)
        self._multicast = bind_multicast(host)

    def _better_ranked(self) -> List[str]:
        return [name for name in self.view.org_others if name < self.host.name]

    @property
    def _takeover_silence(self) -> float:
        return self.election_timeout + max(0, self._rank - 1) * self.heartbeat_period

    def start(self) -> None:
        """Arm heartbeat/election timers; claim immediately if smallest."""
        self.host.every(self.heartbeat_period, self._tick)
        if not self._better_ranked():
            self._become_leader()

    def _tick(self) -> None:
        if self.is_leader:
            self._broadcast_heartbeat()
            return
        if self.host.now < self._takeover_silence:
            return  # give the initial leader time to assert itself
        deadline = self.host.now - self._takeover_silence
        for candidate in self._better_ranked():
            if self._last_heard.get(candidate, -1.0) >= deadline:
                return  # a better-ranked peer is alive
        self._become_leader()

    def _become_leader(self) -> None:
        if not self.is_leader:
            self.is_leader = True
            self.term += 1
            self.elections_won += 1
            self.registry.claim(self.org, self.host.name)
        self._broadcast_heartbeat()

    def _broadcast_heartbeat(self) -> None:
        targets = self.view.org_others
        if targets:
            # One shared declaration across the org, one multicast event.
            self._multicast(targets, LeadershipHeartbeat(self.term))
            self.heartbeats_sent += len(targets)

    def on_heartbeat(self, src: str, message: LeadershipHeartbeat) -> None:
        """Process a leadership declaration from another peer."""
        self._last_heard[src] = self.host.now
        if src < self.host.name and self.is_leader:
            # A better-ranked peer asserts leadership: yield, and hand the
            # registry over in case our claim was the one that stuck.
            self.is_leader = False
            if self.registry.leader_of(self.org) == self.host.name:
                self.registry.claim(self.org, src)

    def handles(self, message: Message) -> bool:
        return isinstance(message, LeadershipHeartbeat)
