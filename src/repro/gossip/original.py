"""The original Fabric v1.2 gossip module: push + pull + recovery."""

from __future__ import annotations

from repro.gossip.base import GossipModule
from repro.gossip.config import OriginalGossipConfig
from repro.gossip.messages import (
    BlockPush,
    PullBlockRequest,
    PullBlockResponse,
    PullDigestRequest,
    PullDigestResponse,
    RecoveryRequest,
    RecoveryResponse,
    StateInfo,
)
from repro.gossip.pull import PullComponent
from repro.gossip.push_infect_die import InfectAndDiePush
from repro.gossip.recovery import RecoveryComponent
from repro.gossip.view import OrganizationView
from repro.ledger.block import Block
from repro.net.message import Message


class OriginalGossip(GossipModule):
    """Fabric's stock gossip: infect-and-die push, periodic pull, recovery.

    The leader peer receives each block from the ordering service and is
    the first infected peer: it pushes the block to ``fout`` random peers,
    exactly like any other first reception (paper §III-A, Fig. 3).
    """

    def __init__(self, host, view: OrganizationView, config: OriginalGossipConfig) -> None:
        super().__init__(host, view)
        self.config = config
        self.push = InfectAndDiePush(
            host,
            view,
            fout=config.fout,
            t_push=config.t_push,
            buffer_max=config.push_buffer_max,
        )
        self.pull = PullComponent(
            host,
            view,
            fin=config.fin,
            t_pull=config.t_pull,
            digest_window=config.pull_digest_window,
            deliver=self._deliver,
        )
        self.recovery = RecoveryComponent(
            host,
            view,
            t_recovery=config.recovery.t_recovery,
            t_state_info=config.recovery.t_state_info,
            state_info_fanout=config.recovery.state_info_fanout,
            batch_max=config.recovery.batch_max,
            deliver=self._deliver,
        )

        # Exact-type dispatch table; see EnhancedGossip.handle.
        self._dispatch = {
            BlockPush: self._on_block_push,
            PullDigestRequest: lambda src, message: self.pull.on_digest_request(src),
            PullDigestResponse: self.pull.on_digest_response,
            PullBlockRequest: self.pull.on_block_request,
            PullBlockResponse: self.pull.on_block_response,
            StateInfo: self.recovery.on_state_info,
            RecoveryRequest: self.recovery.on_recovery_request,
            RecoveryResponse: self.recovery.on_recovery_response,
        }

    def _start_components(self) -> None:
        if self.config.fin > 0:
            self.pull.start()
        self.recovery.start()

    def on_block_from_orderer(self, block: Block) -> None:
        if self._deliver(block, via="orderer"):
            self.push.on_first_reception(block)

    def _on_block_push(self, src: str, message: BlockPush) -> None:
        if self._deliver(message.block, via="push"):
            self.push.on_first_reception(message.block)

    def handle(self, src: str, message: Message) -> bool:
        handler = self._dispatch.get(type(message))
        if handler is None:
            return False
        handler(src, message)
        return True
