"""Gossip dissemination layer: the paper's subject and contribution.

Two complete, pluggable gossip modules are provided:

* :class:`repro.gossip.original.OriginalGossip` — Fabric v1.2's module:
  infect-and-die push with a ``t_push`` buffer, periodic pull, and
  recovery (anti-entropy), with the paper's default parameters.
* :class:`repro.gossip.enhanced.EnhancedGossip` — the paper's contribution:
  infect-upon-contagion push with per-block TTL counters, push digests
  above ``TTL_direct``, a randomized initial gossiper
  (``f_leader_out = 1``), no pull, recovery retained.

Both are built from shared components (:mod:`repro.gossip.pull`,
:mod:`repro.gossip.recovery`, :mod:`repro.gossip.push_infect_die`,
:mod:`repro.gossip.push_infect_contagion`) over typed messages
(:mod:`repro.gossip.messages`).
"""

from repro.gossip.base import GossipModule
from repro.gossip.config import EnhancedGossipConfig, OriginalGossipConfig
from repro.gossip.enhanced import EnhancedGossip
from repro.gossip.original import OriginalGossip
from repro.gossip.view import OrganizationView

__all__ = [
    "EnhancedGossip",
    "EnhancedGossipConfig",
    "GossipModule",
    "OrganizationView",
    "OriginalGossip",
    "OriginalGossipConfig",
]
