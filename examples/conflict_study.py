#!/usr/bin/env python3
"""Consistency conflicts vs. gossip module (paper Table II in miniature).

Runs the full execute-order-validate pipeline — client, single endorser,
ordering service, 100 gossiping peers — under two block periods with both
gossip modules, counting validation-time conflicts both ways (MVCC failures
and the paper's ledger-sum method). Takes ~1-2 min.

Usage::

    python examples/conflict_study.py
"""

from repro import ConflictExperimentConfig, run_conflict_experiment
from repro.gossip.config import EnhancedGossipConfig, OriginalGossipConfig
from repro.metrics.report import format_table


def main() -> None:
    rows = []
    for period in (2.0, 0.75):
        cells = {}
        for label, gossip in (
            ("original", OriginalGossipConfig()),
            ("enhanced", EnhancedGossipConfig.paper_f4()),
        ):
            config = ConflictExperimentConfig.scaled(
                gossip=gossip, block_period=period, seed=3
            )
            print(f"running block period {period} s with {label} gossip "
                  f"({config.total_transactions} transactions)...")
            result = run_conflict_experiment(config)
            assert result.invalidated == result.invalidated_by_ledger, (
                "MVCC counter and ledger-sum check must agree"
            )
            cells[label] = result
        original, enhanced = cells["original"], cells["enhanced"]
        difference = (enhanced.invalidated - original.invalidated) / max(1, original.invalidated)
        rows.append([
            period,
            original.tx_per_block,
            original.validation_time_per_block,
            original.invalidated,
            enhanced.invalidated,
            f"{difference * 100:+.0f}%",
        ])

    print()
    print(format_table(
        ["Block period (s)", "Tx/block", "Validation (s)",
         "Conflicts (original)", "Conflicts (enhanced)", "Difference"],
        rows,
        title="Validation-time conflicts (scaled Table II: 20 hot keys, 1,000 tx)",
    ))
    print("\nPaper shape: the enhanced module always invalidates fewer transactions,")
    print("and its advantage grows as the block period shrinks (-17% at 2 s to -36%")
    print("at 0.75 s in the paper's full-scale runs).")


if __name__ == "__main__":
    main()
