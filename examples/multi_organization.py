#!/usr/bin/env python3
"""Multi-organization deployment (paper §VII future-work direction).

Fabric restricts block gossip to peers of the same organization; the
orderer sends each block to one leader per org, and each org disseminates
internally (paper Fig. 1). This example deploys three organizations of 20
peers each, verifies that push traffic never crosses org boundaries, and
compares per-org dissemination latency.

Usage::

    python examples/multi_organization.py
"""

from repro import EnhancedGossipConfig, build_network
from repro.experiments.workloads import synthetic_block_transactions
from repro.gossip.messages import BlockPush, PushDigest, PushRequest
from repro.metrics.report import format_table


def main() -> None:
    net = build_network(
        n_peers=60, gossip=EnhancedGossipConfig.paper_f4(), organizations=3, seed=5
    )
    org_of = {name: org for org, members in net.org_members.items() for name in members}
    cross_org = []

    original_send = net.network.send

    def audited_send(src, dst, message):
        if isinstance(message, (BlockPush, PushDigest, PushRequest)):
            if org_of.get(src) and org_of.get(dst) and org_of[src] != org_of[dst]:
                cross_org.append((src, dst))
        original_send(src, dst, message)

    net.network.send = audited_send
    net.start()

    transactions = synthetic_block_transactions(50, 3_200)
    blocks = 15
    for index in range(blocks):
        net.sim.schedule_at(0.5 + index * 1.5, net.orderer.emit_block, transactions)
    net.run_until(
        lambda: all(p.blockchain.max_known_number() >= blocks - 1 for p in net.peers.values()),
        step=1.0, max_time=180.0,
    )

    print("deployment: 3 organizations x 20 peers, leaders "
          f"{sorted(net.leaders.values())}")
    print(f"cross-organization push messages observed: {len(cross_org)} "
          "(must be 0: gossip is org-local)")
    assert cross_org == []

    rows = []
    for org, members in sorted(net.org_members.items()):
        latencies = []
        for block in net.tracker.blocks():
            per_block = net.tracker.block_latencies(block)
            latencies.extend(per_block[name] for name in members if name in per_block)
        latencies.sort()
        rows.append([
            org,
            net.leaders[org],
            latencies[len(latencies) // 2],
            latencies[-1],
        ])
    print()
    print(format_table(
        ["organization", "leader", "median latency (s)", "worst latency (s)"],
        rows,
        title="Per-organization dissemination (enhanced gossip, fout=4, TTL=9)",
    ))
    print("\nNote: each org runs an independent 20-peer epidemic; the paper points")
    print("out that epidemic dissemination only gets better as n grows (§VII), so")
    print("larger orgs would see the same sub-second behaviour.")

    wan_scenario()


def wan_scenario() -> None:
    """Same deployment, but each organization in its own datacenter.

    Only the orderer→leader hops cross the WAN (block gossip is org-local),
    so per-org dissemination stays LAN-fast and just shifts by the WAN
    delivery delay — evidence for the paper's expectation that cross-org
    relaying would be the interesting future extension.
    """
    from repro.net.latency import ConstantLatency, LanLatency, WanLatency
    from repro.net.network import NetworkConfig

    print("\n=== WAN variant: one datacenter per organization ===")
    site_of = {}
    for org_index in range(3):
        for peer_index in range(60):
            if peer_index % 3 == org_index:
                site_of[f"peer-{peer_index}"] = f"dc{org_index}"
    config = NetworkConfig(
        latency=WanLatency(
            site_of=site_of,
            intra=LanLatency(),
            inter=ConstantLatency(0.045),  # ~transatlantic one-way
        )
    )
    net = build_network(
        n_peers=60, gossip=EnhancedGossipConfig.paper_f4(), organizations=3,
        seed=6, network_config=config,
    )
    net.start()
    transactions = synthetic_block_transactions(50, 3_200)
    for index in range(10):
        net.sim.schedule_at(0.5 + index * 1.5, net.orderer.emit_block, transactions)
    net.run_until(
        lambda: all(p.blockchain.max_known_number() >= 9 for p in net.peers.values()),
        step=1.0, max_time=120.0,
    )
    latencies = net.tracker.all_latencies()
    latencies.sort()
    print(f"median dissemination latency: {latencies[len(latencies) // 2]:.3f} s "
          "(gossip stays intra-datacenter; only orderer->leader crosses the WAN)")
    print(f"worst: {latencies[-1]:.3f} s")


if __name__ == "__main__":
    main()
