#!/usr/bin/env python3
"""Quickstart: disseminate blocks through a simulated Fabric network.

Builds a 50-peer organization, runs the paper's enhanced gossip module
(fout=4, TTL=9) over 20 blocks, and prints the latency and bandwidth
summary. Runs in a few seconds.

Usage::

    python examples/quickstart.py
"""

from repro import DisseminationConfig, EnhancedGossipConfig, run_dissemination
from repro.gossip.config import BackgroundTrafficConfig


def main() -> None:
    config = DisseminationConfig(
        gossip=EnhancedGossipConfig.paper_f4(),
        n_peers=50,
        blocks=20,
        block_period=1.5,  # one ~160 KB block every 1.5 s, as in the paper
        seed=1,
        background=BackgroundTrafficConfig(),
        idle_tail=20.0,
    )
    print(f"Running enhanced gossip over {config.n_peers} peers, {config.blocks} blocks...")
    result = run_dissemination(config)

    stats = result.latency_summary()
    print("\nDissemination latency (all blocks x all peers):")
    print(f"  samples : {stats.count}")
    print(f"  mean    : {stats.mean * 1000:.1f} ms")
    print(f"  median  : {stats.p50 * 1000:.1f} ms")
    print(f"  p99     : {stats.p99 * 1000:.1f} ms")
    print(f"  worst   : {stats.maximum * 1000:.1f} ms")
    print(f"  every block reached every peer: {result.coverage_complete()}")
    print(f"  recovery component ever needed: {result.recovery_usage() > 0}")

    leader = result.leader_bandwidth()
    print("\nBandwidth (rx+tx, averaged over the run):")
    print(f"  leader peer : {leader.average_mb_per_s:.2f} MB/s")
    print(f"  regular peer: {result.average_regular_peer_mb_per_s():.2f} MB/s")

    counts = result.bandwidth_report().message_counts()
    print("\nFull-block transmissions per block: "
          f"{counts['BlockPush'] / config.blocks:.0f} (n + o(n); n = {config.n_peers})")
    print(f"Push digests per block: {counts.get('PushDigest', 0) / config.blocks:.0f}")


if __name__ == "__main__":
    main()
