#!/usr/bin/env python3
"""Adversarial study: the byzantine arsenal, churn and retry hardening.

The paper's §VII leaves byzantine countermeasures to future work; this
study runs the repo's adversarial scenario suite end to end and reads
the resilience report each run exports:

1. ``byzantine-teasers`` — 250 peers, 20% advertise-then-stonewall: the
   request-retry ladder rotates every stalled request to a different
   digest holder, so the run converges with **zero** recovery rescues;
2. ``digest-liars`` — peers re-advertising digests for blocks they never
   serve poison the holder sets the ladder retries against;
3. ``eclipse-attempt`` — a teasing coalition monopolizes one victim's
   connectivity until the eclipse is released;
4. ``flash-crowd`` / ``mass-departure`` — runtime membership churn: late
   joiners catch up through recovery, leavers drop out of every view and
   the completion predicate.

Every scenario here replays bit-for-bit at any shard count — the study
proves it on the first scenario by re-running it across 4 inline shard
workers (docs/faults.md has the per-injector RNG contract).

Usage::

    python examples/adversarial_study.py
"""

from repro.scenarios import run_scenario, run_scenario_sharded


def describe(run) -> None:
    snapshot = run.snapshot()
    resilience = snapshot["resilience"]
    counters = resilience["counters"]
    print(f"  converged at t={snapshot['final_time']:.1f} s; "
          f"faults dropped {resilience['faults_dropped']} messages")
    print(f"  requests: {counters['requests_sent']} sent, "
          f"{counters['requests_retried']} retried, "
          f"{counters['requests_abandoned']} abandoned")
    print(f"  stalls rescued by retry: {counters['stalls_rescued_by_retry']}  |  "
          f"blocks via recovery: {snapshot['blocks_via_recovery']}")
    if resilience["peers_joined"] or resilience["peers_departed"]:
        print(f"  membership: +{resilience['peers_joined']} joined, "
              f"-{resilience['peers_departed']} departed")
    full = resilience["infection"].get("1")
    if full and "max" in full:
        print(f"  100% infection: p50 {full['p50']:.3f} s, "
              f"max {full['max']:.3f} s over {full['blocks_reached']} blocks")
    print()


def study_teasers() -> None:
    print("=== 1. byzantine-teasers: 20% of 250 peers advertise, never serve ===")
    run = run_scenario("byzantine-teasers", seed=1)
    describe(run)
    assert run.snapshot()["blocks_via_recovery"] == 0, "retries should beat recovery"
    counters = run.snapshot()["resilience"]["counters"]
    assert counters["stalls_rescued_by_retry"] > 0


def study_liars() -> None:
    print("=== 2. digest-liars: adverts for blocks the sender never serves ===")
    run = run_scenario("digest-liars", seed=1)
    print(f"  lies told (re-advertised digests): {run.faults.adversaries[0].lies_told}")
    describe(run)


def study_eclipse() -> None:
    print("=== 3. eclipse-attempt: 3 attackers monopolize peer-16 until t=6 s ===")
    run = run_scenario("eclipse-attempt", seed=1)
    eclipse = run.faults.eclipses[0]
    print(f"  messages the eclipse cut off: {eclipse.dropped}")
    describe(run)


def study_churn() -> None:
    print("=== 4. flash-crowd and mass-departure: runtime membership churn ===")
    for name in ("flash-crowd", "mass-departure"):
        print(f"-- {name} --")
        describe(run_scenario(name, seed=1))


def study_shard_determinism() -> None:
    print("=== 5. the whole arsenal shards: 1 process vs 4 shard workers ===")
    single = run_scenario("byzantine-teasers", seed=1).snapshot()
    sharded = run_scenario_sharded(
        "byzantine-teasers", seed=1, shards=4, mode="inline"
    ).snapshot()
    mismatched = [
        key for key in single
        if key != "events_executed" and single[key] != sharded[key]
    ]
    assert not mismatched, mismatched
    print("  snapshots identical (events_executed excluded, as documented)\n")


def main() -> None:
    study_teasers()
    study_liars()
    study_eclipse()
    study_churn()
    study_shard_determinism()


if __name__ == "__main__":
    main()
