#!/usr/bin/env python3
"""Fault tolerance: crashes, silent (adversarial) peers and packet loss.

The paper keeps recovery (anti-entropy) precisely for crash/outage
resilience (§III-A) and leaves adversarial peers to future work (§VII).
This example exercises both with the enhanced gossip module:

1. a peer crashes mid-run and catches up through recovery after restarting;
2. 20% of peers free-ride (never forward or advertise) — the epidemic's
   redundancy budget absorbs them;
3. 20% of peers *tease* (advertise digests, never deliver): stalled
   requests are retried against different digest holders, with recovery
   as the backstop — the countermeasure the paper's §VII calls for;
4. 5% uniform packet loss — the TTL is chosen for pe = 1e-6 under ideal
   conditions, and the surviving redundancy still covers everyone.

Usage::

    python examples/fault_tolerance.py
"""

import random

from repro import EnhancedGossipConfig, build_network
from repro.faults import CrashSchedule, PacketLossFault, SilentPeerFault, TeasingPeerFault
from repro.experiments.workloads import synthetic_block_transactions


def drive_blocks(net, count, period=1.0, tx_per_block=10):
    transactions = synthetic_block_transactions(tx_per_block, 3_200)
    for index in range(count):
        net.sim.schedule_at(0.5 + index * period, net.orderer.emit_block, transactions)


def scenario_crash_and_recover() -> None:
    print("=== 1. crash and recovery ===")
    net = build_network(n_peers=30, gossip=EnhancedGossipConfig.paper_f4(), seed=1)
    net.start()
    victim = net.peers["peer-13"]
    CrashSchedule(victim, crash_at=2.0, recover_at=10.0).arm(net.sim)
    drive_blocks(net, count=12)
    net.run_until(
        lambda: all(p.ledger_height >= 12 for p in net.peers.values()),
        step=1.0, max_time=120.0,
    )
    print("peer-13 crashed at t=2 s, recovered at t=10 s, final height "
          f"{victim.ledger_height}/12")
    print("blocks it fetched through the recovery component: "
          f"{victim.blocks_received_via['recovery']}")
    assert victim.blockchain.verify_committed_chain()
    print("chain integrity verified\n")


def scenario_free_riders() -> None:
    print("=== 2. free-riding peers (20% of the organization) ===")
    net = build_network(n_peers=30, gossip=EnhancedGossipConfig.paper_f4(), seed=2)
    silent = [f"peer-{i}" for i in range(1, 7)]
    fault = SilentPeerFault(net.network, silent)
    net.start()
    drive_blocks(net, count=10)
    net.run_until(
        lambda: all(p.blockchain.max_known_number() >= 9 for p in net.peers.values()),
        step=1.0, max_time=120.0,
    )
    latencies = net.tracker.all_latencies()
    recoveries = sum(p.blocks_received_via["recovery"] for p in net.peers.values())
    print(f"all 10 blocks reached all 30 peers despite {len(silent)} free-riders")
    print(f"forwarding work the free-riders skipped: {fault.dropped} messages")
    print(f"worst dissemination latency: {max(latencies):.3f} s "
          f"({recoveries} recovery fetches)")
    print("note: 20% free-riders in a 30-peer org eat deep into the pe margin;")
    print("the TTL table would prescribe a larger TTL to restore the guarantee\n")


def scenario_teasers() -> None:
    print("=== 3. teasing peers: advertise, then stonewall (20%) ===")
    net = build_network(n_peers=30, gossip=EnhancedGossipConfig.paper_f4(), seed=2)
    teasers = [f"peer-{i}" for i in range(1, 7)]
    fault = TeasingPeerFault(net.network, teasers)
    net.start()
    drive_blocks(net, count=10)
    net.run_until(
        lambda: all(p.blockchain.max_known_number() >= 9 for p in net.peers.values()),
        step=1.0, max_time=300.0,
    )
    latencies = net.tracker.all_latencies()
    recoveries = sum(p.blocks_received_via["recovery"] for p in net.peers.values())
    print(f"all blocks still delivered; requested transfers withheld: {fault.dropped}")
    print(f"worst dissemination latency: {max(latencies):.3f} s "
          f"(retry/recovery fallback; {recoveries} recovery fetches)")
    print("-> the §VII countermeasure: the request-retry ladder rotates a")
    print("   stalled request to a different digest holder (see")
    print("   examples/adversarial_study.py for the hardened configuration)\n")


def scenario_packet_loss() -> None:
    print("=== 4. 5% uniform packet loss ===")
    net = build_network(n_peers=30, gossip=EnhancedGossipConfig.paper_f4(), seed=3)
    fault = PacketLossFault(net.network, 0.05, random.Random(9))
    net.start()
    drive_blocks(net, count=10)
    net.run_until(
        lambda: all(p.blockchain.max_known_number() >= 9 for p in net.peers.values()),
        step=1.0, max_time=120.0,
    )
    print(f"messages lost: {fault.dropped}")
    recoveries = sum(p.blocks_received_via["recovery"] for p in net.peers.values())
    print(f"all blocks delivered; recovery needed for {recoveries} block receptions\n")


def main() -> None:
    scenario_crash_and_recover()
    scenario_free_riders()
    scenario_teasers()
    scenario_packet_loss()


if __name__ == "__main__":
    main()
