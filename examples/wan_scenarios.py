"""Declarative scenarios: WAN topologies, faults, and parallel sweeps.

The paper's testbed was one datacenter; the scenario subsystem expresses
the deployments Fabric actually runs in. This example runs a registered
multi-region scenario, shows what its fault siblings do to dissemination,
and fans a seed matrix out with the SweepRunner.

Run with: PYTHONPATH=src python examples/wan_scenarios.py
"""

from repro.scenarios import SweepRunner, get_scenario, run_scenario, scenario_names

print("registered scenarios:", ", ".join(scenario_names()))

# One multi-region run: 3 organizations in 3 regions; the orderer (eu-west)
# reaches the ap-south leader over two WAN hops, visible per block.
run = run_scenario("wan-3-region", seed=1)
tracker = run.result.net.tracker
print("\nwan-3-region:")
print("  coverage complete:", run.result.coverage_complete())
print("  orderer->leader delay, block 0: "
      f"{tracker.orderer_to_leader_delay(0) * 1000:.1f} ms")
print(f"  p95 dissemination latency: {run.result.latency_summary().p95:.3f} s")

# A fault story: 5 of 20 peers partitioned away mid-run, healed, then
# caught up by the recovery (anti-entropy) component.
partition = run_scenario("partition-heal", seed=1)
snap = partition.snapshot()
print("\npartition-heal:")
print(f"  messages dropped at the partition boundary: {snap['dropped_messages']}")
print(f"  blocks fetched via recovery after the heal: {snap['blocks_via_recovery']}")
print("  coverage complete:", partition.result.coverage_complete())

# A seed sweep: every seed is an independent deterministic simulation, so
# the matrix parallelizes across worker processes — and the merged report
# is byte-identical no matter how many jobs run it.
seeds = [1, 2, 3, 4]
report = SweepRunner(jobs=2).run("degraded-links", seeds=seeds)
assert report.to_json() == SweepRunner(jobs=1).run("degraded-links", seeds=seeds).to_json()
spec = get_scenario("degraded-links")
print(f"\nsweep of {spec.name!r} ({spec.description}):")
print(report.render())
