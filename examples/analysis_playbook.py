#!/usr/bin/env python3
"""The analytical model of the push phase (paper §IV + appendix).

Walks through every quantity the paper derives — carrying capacity γ via
Lambert-W, the ψ recursion, the logistic bound, expected digest counts, the
probability of imperfect dissemination, TTL selection and the (n, pe)
lookup table — and cross-checks them against exact analysis and Monte
Carlo. Runs in seconds; no network simulation involved.

Usage::

    python examples/analysis_playbook.py
"""

import random

from repro.analysis import (
    TTLTable,
    carrying_capacity,
    expected_digests,
    imperfect_dissemination_probability,
    infect_and_die_distribution,
    logistic_growth,
    psi_sequence,
    simulate_infect_upon_contagion,
    ttl_for_target,
)
from repro.metrics.report import format_table


def main() -> None:
    n = 100

    print("=== Fabric's original infect-and-die push (n=100, fout=3) ===")
    exact = infect_and_die_distribution(n, 3)
    print(f"mean informed peers : {exact.mean_infected:.2f}   (paper: 94)")
    print(f"std of informed     : {exact.std_infected:.2f}    (paper: 2.6)")
    print(f"full transmissions  : {exact.mean_transmissions:.1f}  (paper: 282)")
    print(f"P[some peer missed] : {exact.miss_probability:.3f} -> the pull/recovery tail\n")

    print("=== Carrying capacity and epidemic growth (fout=4) ===")
    gamma = carrying_capacity(n, 4)
    print(f"gamma = n(fout + W(-fout e^-fout))/fout = {gamma:.2f}")
    psi = psi_sequence(9, n, 4)
    logistic = [logistic_growth(r, n, 4) for r in range(10)]
    print(format_table(
        ["round r", "psi(r)", "logistic X(r)"],
        [[r, psi[r], logistic[r]] for r in range(10)],
        title="per-round reach of the pair epidemic",
    ))

    print("\n=== Probability of imperfect dissemination ===")
    for fout, ttl, target in ((4, 9, 1e-6), (2, 19, 1e-6), (4, 12, 1e-12)):
        m = expected_digests(n, fout, ttl)
        pe = imperfect_dissemination_probability(n, fout, ttl)
        minimal = ttl_for_target(n, fout, target)
        print(f"fout={fout}, TTL={ttl:>2}: m = {m:7.0f} digests, pe <= {pe:.2e} "
              f"(target {target:g}; minimal TTL = {minimal})")

    print("\n=== The (n, pe) -> TTL lookup table peers would ship (fout=4) ===")
    table = TTLTable(fout=4)
    print(format_table(
        ["n"] + [f"pe={pe:g}" for pe in table.pe_targets],
        [[size] + [entries[pe] for pe in table.pe_targets] for size, entries in table.rows()],
    ))
    print(f"an organization of 73 peers uses the n=100 row: TTL = {table.lookup(73, 1e-6)}")

    print("\n=== Monte Carlo confirmation (1,000 pair-epidemic runs each) ===")
    for fout, ttl in ((4, 9), (2, 19)):
        sample = simulate_infect_upon_contagion(n, fout, ttl, runs=1000, rng=random.Random(1))
        print(f"fout={fout}, TTL={ttl:>2}: full coverage in "
              f"{sample.full_coverage_fraction * 100:.1f}% of runs, "
              f"{sample.mean_full_transmissions:.0f} pair messages on average")


if __name__ == "__main__":
    main()
