#!/usr/bin/env python3
"""Original vs. enhanced gossip, side by side (paper Figs. 4-9 in miniature).

Runs the same 60-peer workload under Fabric's stock gossip module and the
paper's enhanced module, then prints the latency CDFs at the paper's
probability ticks and the bandwidth comparison. Takes ~30 s.

Usage::

    python examples/dissemination_comparison.py
"""

from repro import (
    DisseminationConfig,
    EnhancedGossipConfig,
    OriginalGossipConfig,
    run_dissemination,
)
from repro.gossip.config import BackgroundTrafficConfig
from repro.metrics.latency import percentile
from repro.metrics.probability_plot import tail_latency
from repro.metrics.report import format_table


def run(gossip, label):
    config = DisseminationConfig(
        gossip=gossip,
        n_peers=60,
        blocks=30,
        block_period=1.5,
        seed=7,
        background=BackgroundTrafficConfig(),
        idle_tail=20.0,
    )
    print(f"running {label}...")
    return run_dissemination(config)


def main() -> None:
    original = run(OriginalGossipConfig(), "original Fabric gossip")
    enhanced = run(EnhancedGossipConfig.paper_f4(), "enhanced gossip (fout=4, TTL=9)")

    fractions = (0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999)
    latencies_original = sorted(original.tracker.all_latencies())
    latencies_enhanced = sorted(enhanced.tracker.all_latencies())
    rows = [
        [
            f"{fraction:g}",
            percentile(latencies_original, fraction),
            percentile(latencies_enhanced, fraction),
        ]
        for fraction in fractions
    ]
    print()
    print(format_table(
        ["CDF fraction", "original (s)", "enhanced (s)"],
        rows,
        title="Dissemination latency CDF (all blocks x all peers)",
    ))

    worst_original = max(original.time_to_reach_all())
    worst_enhanced = max(enhanced.time_to_reach_all())
    print(f"\nworst time to reach ALL peers: original {worst_original:.2f} s, "
          f"enhanced {worst_enhanced:.3f} s -> {worst_original / worst_enhanced:.0f}x faster")
    print("(paper headline: more than 10x faster)")

    original_bw = original.average_regular_peer_mb_per_s()
    enhanced_bw = enhanced.average_regular_peer_mb_per_s()
    print(f"\nregular-peer bandwidth: original {original_bw:.2f} MB/s, "
          f"enhanced {enhanced_bw:.2f} MB/s -> {(1 - enhanced_bw / original_bw) * 100:.0f}% less")
    print("(paper headline: more than 40% less)")

    print("\ntail composition of the original module: "
          f"{original.pull_usage()} block receptions via the 4 s pull, "
          f"{original.recovery_usage()} via the 10 s recovery")
    print("95th-percentile latency, original: "
          f"{tail_latency(original.tracker.all_latencies(), 0.95):.2f} s; "
          f"enhanced never exceeds {max(latencies_enhanced):.3f} s")


if __name__ == "__main__":
    main()
