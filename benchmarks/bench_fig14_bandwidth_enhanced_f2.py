"""Figure 14: bandwidth with the ENHANCED gossip, fout=2, TTL=19.

Paper behaviour: average and overall bandwidth essentially unchanged versus
fout=4/TTL=9 (Fig. 9) — the digest count is pinned by the target pe, not by
fout.
"""

from benchmarks._render import bandwidth_figure_report
from benchmarks.conftest import run_once
from repro.experiments.dissemination import run_dissemination
from repro.experiments.figures import bandwidth_figure, figure_config


def test_fig14_enhanced_f2_bandwidth(benchmark, full_scale):
    def experiment():
        f2 = run_dissemination(figure_config("fig12", full=full_scale, seed=1, with_background=True))
        f4 = run_dissemination(figure_config("fig7", full=full_scale, seed=1, with_background=True))
        return f2, f4

    f2, f4 = run_once(benchmark, experiment)
    figure = bandwidth_figure(f2, "Figure 14 (enhanced f2)")
    print()
    print(bandwidth_figure_report(figure))

    f2_avg = f2.average_regular_peer_mb_per_s()
    f4_avg = f4.average_regular_peer_mb_per_s()
    print(f"\nregular peer avg: f2 {f2_avg:.2f} MB/s vs f4 {f4_avg:.2f} MB/s "
          "(paper: essentially unchanged)")

    assert abs(f2_avg - f4_avg) / f4_avg < 0.15
    counts = f2.bandwidth_report().message_counts()
    per_block = counts["BlockPush"] / f2.config.blocks
    assert per_block <= f2.config.n_peers * 1.2  # still n + o(n) full copies
