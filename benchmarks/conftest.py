"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports (plus a rendered ASCII plot). The
default scale is laptop-sized — 100 peers with fewer blocks — and setting
``REPRO_FULL=1`` switches to the paper's full 1,000-block / 10,000-tx runs.

Run with::

    pytest benchmarks/ --benchmark-only            # scaled
    REPRO_FULL=1 pytest benchmarks/ --benchmark-only  # paper scale
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0", "false")


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL


def run_once(benchmark, function):
    """Benchmark a whole-experiment function exactly once.

    Simulation experiments are deterministic and expensive; statistical
    repetition belongs to the experiment seeds, not the timer.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)
