"""Table II: invalidated transactions under different block periods.

Paper behaviour to reproduce: the enhanced module (fout=4, TTL=9) always
invalidates fewer transactions than the original, and its advantage grows
as the block period shrinks (paper: -17% at 2 s down to -36% at 0.75 s),
because the original module's conflicts are dominated by the
period-independent dissemination tail.

Scaled default: same 100-peer network, hotter keys (20 keys reused every
~4 s), 1,000 transactions, 3 repetitions. ``REPRO_FULL=1`` runs the paper's
100 keys × 100 increments × 5 repetitions.
"""

from benchmarks.conftest import run_once
from repro.experiments.tables import render_table2, run_table2


def test_table2_conflicts(benchmark, full_scale):
    rows = run_once(
        benchmark,
        lambda: run_table2(repetitions=5 if full_scale else 3, full=full_scale),
    )
    print()
    print(render_table2(rows))

    # The enhanced module wins in every row.
    for row in rows:
        assert row.conflicts_enhanced < row.conflicts_original, (
            f"enhanced must invalidate fewer tx at period {row.block_period}"
        )
    # The relative advantage grows as the block period shrinks
    # (rows are ordered 2.0 -> 0.75): compare the two extremes.
    assert rows[-1].difference < rows[0].difference
    # tx/block tracks rate * period as in the paper's second column.
    assert 8 <= rows[0].tx_per_block <= 12  # 2 s at 5 tx/s
    assert 3 <= rows[-1].tx_per_block <= 6  # 0.75 s at 5 tx/s
