"""Figure 6: bandwidth of the leader and a regular peer, ORIGINAL gossip.

Paper behaviour: ~1 MB/s per peer during the workload (block pushes
dominate: each block crosses the wire ~282 times at n=100), dropping to a
~0.4 MB/s background floor when transaction generation ends.
"""

from benchmarks._render import bandwidth_figure_report
from benchmarks.conftest import run_once
from repro.experiments.dissemination import run_dissemination
from repro.experiments.figures import bandwidth_figure, figure_config


def test_fig6_original_bandwidth(benchmark, full_scale):
    result = run_once(
        benchmark,
        lambda: run_dissemination(figure_config("fig4", full=full_scale, seed=1, with_background=True)),
    )
    figure = bandwidth_figure(result, "Figure 6 (original gossip)")
    print()
    print(bandwidth_figure_report(figure))

    counts = result.bandwidth_report().message_counts()
    per_block = counts["BlockPush"] / result.config.blocks
    print(f"\nfull-block transmissions per block: {per_block:.0f} (paper: ~282 at n=100)")

    # Paper: each block transmitted in full ~n*fout*coverage ≈ 282 times.
    assert 250 <= per_block <= 300
    # Idle tail drops to the background floor.
    idle_bins = [v for v in figure.regular_series[-3:]]
    work_bins = figure.regular_series[: max(1, len(figure.regular_series) // 2)]
    assert max(idle_bins) < sum(work_bins) / len(work_bins)
