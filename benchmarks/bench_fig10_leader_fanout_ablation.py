"""Figure 10 (ablation): the leader pushes with f_leader_out = fout = 4.

Paper behaviour: the leader's bandwidth rises well above a regular peer's
(it transmits every block fout times in full), demonstrating why the
randomized-initial-gossiper enhancement (f_leader_out = 1) matters.
"""

from benchmarks._render import bandwidth_figure_report
from benchmarks.conftest import run_once
from repro.experiments.dissemination import run_dissemination
from repro.experiments.figures import bandwidth_figure, figure_config


def test_fig10_leader_fanout_ablation(benchmark, full_scale):
    def experiment():
        ablation = run_dissemination(
            figure_config("fig10", full=full_scale, seed=1, with_background=True)
        )
        baseline = run_dissemination(
            figure_config("fig7", full=full_scale, seed=1, with_background=True)
        )
        return ablation, baseline

    ablation, baseline = run_once(benchmark, experiment)
    figure = bandwidth_figure(ablation, "Figure 10 (f_leader_out = fout = 4)")
    print()
    print(bandwidth_figure_report(figure))

    ablation_ratio = ablation.average_leader_mb_per_s() / ablation.average_regular_peer_mb_per_s()
    baseline_ratio = baseline.average_leader_mb_per_s() / baseline.average_regular_peer_mb_per_s()
    print(f"\nleader/regular utilization ratio: {ablation_ratio:.2f} (ablation)"
          f" vs {baseline_ratio:.2f} (f_leader_out=1)")

    # The ablation makes the leader a clear hotspot; with f_leader_out = 1
    # the leader stays close to a regular peer (it still receives every
    # block from the orderer and transmits it once, hence slightly above).
    assert ablation_ratio > 1.45
    assert baseline_ratio < 1.35
    assert ablation_ratio > baseline_ratio + 0.15
