"""Figures 12 & 13: latency with the ENHANCED gossip, fout=2, TTL=19.

Paper behaviour: halving fout halves the early slope of the CDF versus
fout=4 (Fig. 7/8), but tails and worst cases stay similar — fout=4 is an
aggressive choice and fout=2 balances load better.
"""

from benchmarks._render import latency_figure_rows, summary_lines
from benchmarks.conftest import run_once
from repro.experiments.dissemination import run_dissemination
from repro.experiments.figures import block_level_figure, figure_config, peer_level_figure
from repro.metrics.probability_plot import tail_latency


def test_fig12_fig13_enhanced_f2_latency(benchmark, full_scale):
    def experiment():
        f2 = run_dissemination(figure_config("fig12", full=full_scale, seed=1))
        f4 = run_dissemination(figure_config("fig7", full=full_scale, seed=1))
        return f2, f4

    f2, f4 = run_once(benchmark, experiment)
    assert f2.coverage_complete()

    fig12 = peer_level_figure(f2, "Figure 12 (enhanced f2, peer level)")
    fig13 = block_level_figure(f2, "Figure 13 (enhanced f2, block level)")
    print()
    print(latency_figure_rows(fig12))
    print()
    print(latency_figure_rows(fig13))

    latencies_f2 = f2.tracker.all_latencies()
    latencies_f4 = f4.tracker.all_latencies()
    median_ratio = tail_latency(latencies_f2, 0.5) / tail_latency(latencies_f4, 0.5)
    worst_ratio = max(latencies_f2) / max(latencies_f4)
    print()
    print(
        summary_lines(
            "fout=2/TTL=19 vs fout=4/TTL=9",
            {
                "median latency ratio": f"{median_ratio:.2f} (paper: early slope ~halved)",
                "worst-case latency ratio": f"{worst_ratio:.2f} (paper: similar tails)",
            },
        )
    )
    assert max(latencies_f2) < 0.7  # still well below the original module
    assert median_ratio > 1.2  # slower early growth...
    assert worst_ratio < 2.5  # ...but comparable worst case
    assert f2.recovery_usage() == 0
