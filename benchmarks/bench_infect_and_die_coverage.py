"""§IV in-text computation: infect-and-die coverage at n=100, fout=3.

Paper: "infect-and-die push disseminates each block to an average of 94
peers with a standard deviation of 2.6, while transmitting each block in
full 282 times." Verified twice: exact Markov-chain analysis and Monte
Carlo sampling.
"""

import random

from benchmarks.conftest import run_once
from repro.analysis.infect_and_die import infect_and_die_distribution
from repro.analysis.montecarlo import simulate_infect_and_die
from repro.metrics.report import format_table


def test_infect_and_die_coverage(benchmark, full_scale):
    runs = 20_000 if full_scale else 3_000

    def experiment():
        exact = infect_and_die_distribution(100, 3)
        sampled = simulate_infect_and_die(100, 3, runs=runs, rng=random.Random(1))
        return exact, sampled

    exact, sampled = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["quantity", "paper", "exact analysis", "monte carlo"],
            [
                ["mean informed peers", 94, f"{exact.mean_infected:.2f}", f"{sampled.mean_informed:.2f}"],
                ["std of informed peers", 2.6, f"{exact.std_infected:.2f}", f"{sampled.std_informed:.2f}"],
                ["full-block transmissions", 282, f"{exact.mean_transmissions:.1f}", f"{sampled.mean_full_transmissions:.1f}"],
            ],
            title="Infect-and-die push at n=100, fout=3 (paper §IV)",
        )
    )
    assert abs(exact.mean_infected - 94) < 1.0
    assert abs(exact.std_infected - 2.6) < 0.3
    assert abs(exact.mean_transmissions - 282) < 3.0
    assert abs(sampled.mean_informed - exact.mean_infected) < 0.5
