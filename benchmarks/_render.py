"""Rendering helpers: print figures the way the paper reports them.

Latency figures print the probability-plot coordinates at the paper's
y-axis ticks plus an ASCII rendering; bandwidth figures print the 10-second
MB/s series and averages.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.figures import BandwidthFigure, LatencyFigure
from repro.metrics.latency import percentile
from repro.metrics.probability_plot import PAPER_Y_TICKS
from repro.metrics.report import format_table


def latency_figure_rows(figure: LatencyFigure) -> str:
    """The paper's CDF read-outs: latency at each probability tick."""
    ticks = [p for p in PAPER_Y_TICKS if 0.01 <= p <= 0.9999]
    headers = ["fraction"] + list(figure.curves)
    rows = []
    for tick in ticks:
        row: List[object] = [f"{tick:g}"]
        for label in figure.curves:
            samples = sorted(point.latency for point in figure.curves[label])
            row.append(percentile(samples, tick))
        rows.append(row)
    return format_table(headers, rows, title=f"{figure.name}: latency (s) at CDF fractions")


def ascii_plot(series: Sequence[float], width: int = 60, height: int = 12, label: str = "") -> str:
    """A small ASCII chart of a time series."""
    if not series:
        return f"{label}: (empty)"
    peak = max(series) or 1.0
    columns = min(width, len(series))
    step = len(series) / columns
    sampled = [series[int(i * step)] for i in range(columns)]
    lines = []
    for level in range(height, 0, -1):
        threshold = peak * level / height
        line = "".join("█" if value >= threshold else " " for value in sampled)
        lines.append(f"{threshold:8.2f} |{line}")
    lines.append(" " * 9 + "+" + "-" * columns)
    if label:
        lines.insert(0, label)
    return "\n".join(lines)


def bandwidth_figure_report(figure: BandwidthFigure) -> str:
    parts = [
        f"{figure.name}: network utilization, {figure.interval:.0f}-second aggregation",
        ascii_plot(figure.leader_series, label=f"leader peer (avg {figure.leader_average:.2f} MB/s)"),
        ascii_plot(figure.regular_series, label=f"regular peer (avg {figure.regular_average:.2f} MB/s)"),
    ]
    return "\n".join(parts)


def summary_lines(name: str, values: Dict[str, object]) -> str:
    body = "\n".join(f"  {key}: {value}" for key, value in values.items())
    return f"{name}\n{body}"
