"""Figures 7 & 8: latency with the ENHANCED gossip, fout=4, TTL=9.

Paper behaviour: every block reaches every peer in < 0.5 s; the curves are
nearly linear on logistic probability paper; neither pull (removed) nor
recovery is ever needed.
"""

from benchmarks._render import latency_figure_rows, summary_lines
from benchmarks.conftest import run_once
from repro.experiments.dissemination import run_dissemination
from repro.experiments.figures import block_level_figure, figure_config, peer_level_figure


def test_fig7_fig8_enhanced_f4_latency(benchmark, full_scale):
    result = run_once(
        benchmark, lambda: run_dissemination(figure_config("fig7", full=full_scale, seed=1))
    )
    assert result.coverage_complete()

    fig7 = peer_level_figure(result, "Figure 7 (enhanced f4, peer level)")
    fig8 = block_level_figure(result, "Figure 8 (enhanced f4, block level)")
    print()
    print(latency_figure_rows(fig7))
    print()
    print(latency_figure_rows(fig8))
    latencies = result.tracker.all_latencies()
    print()
    print(
        summary_lines(
            "Enhanced gossip (fout=4, TTL=9, TTLdirect=2)",
            {
                "worst latency (s)": f"{max(latencies):.3f}",
                "recovery fetches": result.recovery_usage(),
            },
        )
    )
    # Paper: all blocks reach all peers in less than half a second.
    assert max(latencies) < 0.5
    assert result.pull_usage() == 0
    assert result.recovery_usage() == 0
