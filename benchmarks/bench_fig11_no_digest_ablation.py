"""Figure 11 (ablation): enhanced push WITHOUT digests.

Paper behaviour: once more than n/log n peers are informed, informed peers
keep exchanging full blocks; utilization jumps to ~8 MB/s at full scale —
an order of magnitude above the digest-based module (Fig. 9).
"""

from benchmarks._render import bandwidth_figure_report
from benchmarks.conftest import run_once
from repro.experiments.dissemination import run_dissemination
from repro.experiments.figures import bandwidth_figure, figure_config


def test_fig11_no_digest_ablation(benchmark, full_scale):
    def experiment():
        ablation = run_dissemination(
            figure_config("fig11", full=full_scale, seed=1, with_background=True)
        )
        baseline = run_dissemination(
            figure_config("fig7", full=full_scale, seed=1, with_background=True)
        )
        return ablation, baseline

    ablation, baseline = run_once(benchmark, experiment)
    figure = bandwidth_figure(ablation, "Figure 11 (no digests)")
    print()
    print(bandwidth_figure_report(figure))

    ablation_avg = ablation.average_regular_peer_mb_per_s()
    baseline_avg = baseline.average_regular_peer_mb_per_s()
    counts = ablation.bandwidth_report().message_counts()
    per_block = counts["BlockPush"] / ablation.config.blocks
    print(f"\nregular peer avg: {ablation_avg:.2f} MB/s (digest version: {baseline_avg:.2f})")
    print(f"full-block transmissions per block: {per_block:.0f} "
          "(digest version keeps it at ~n)")

    # The blow-up: several times the digest version's bandwidth, and far
    # more than n full copies per block.
    assert ablation_avg > 3.0 * baseline_avg
    assert per_block > 5 * ablation.config.n_peers
