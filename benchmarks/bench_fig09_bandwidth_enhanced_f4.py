"""Figure 9: bandwidth with the ENHANCED gossip, fout=4, TTL=9.

Paper behaviour: regular-peer (and total) bandwidth drops by more than 40%
versus the original module (Fig. 6); full blocks cross the wire only
n + o(n) times; the leader is no hotter than a regular peer.
"""

from benchmarks._render import bandwidth_figure_report
from benchmarks.conftest import run_once
from repro.experiments.dissemination import run_dissemination
from repro.experiments.figures import bandwidth_figure, figure_config


def test_fig9_enhanced_f4_bandwidth(benchmark, full_scale):
    def experiment():
        enhanced = run_dissemination(figure_config("fig7", full=full_scale, seed=1, with_background=True))
        original = run_dissemination(figure_config("fig4", full=full_scale, seed=1, with_background=True))
        return enhanced, original

    enhanced, original = run_once(benchmark, experiment)
    figure = bandwidth_figure(enhanced, "Figure 9 (enhanced f4)")
    print()
    print(bandwidth_figure_report(figure))

    enhanced_avg = enhanced.average_regular_peer_mb_per_s()
    original_avg = original.average_regular_peer_mb_per_s()
    reduction = 1.0 - enhanced_avg / original_avg
    counts = enhanced.bandwidth_report().message_counts()
    per_block = counts["BlockPush"] / enhanced.config.blocks
    print(f"\nregular peer avg: {enhanced_avg:.2f} MB/s vs original {original_avg:.2f} MB/s")
    print(f"bandwidth reduction: {reduction * 100:.0f}% (paper: >40%)")
    print(f"full-block transmissions per block: {per_block:.0f} (paper: n + o(n) ≈ 100-110)")

    assert reduction > 0.30
    assert per_block <= enhanced.config.n_peers * 1.2
    leader = enhanced.average_leader_mb_per_s()
    assert leader < 1.3 * enhanced_avg  # randomized initial gossiper works
