"""Ablation (§VII future work): adversarial peers.

The paper leaves block-withholding adversaries to future work. This bench
measures 10% adversarial peers (n=100) in three scenarios:

* **enhanced / free-riders** (:class:`SilentPeerFault`): adversaries stop
  forwarding and advertising; the enhanced push absorbs the lost capacity
  with its redundancy budget and stays fast;
* **enhanced / teasers** (:class:`TeasingPeerFault`): adversaries keep
  advertising digests but never deliver a requested block — capturing
  honest peers' single in-flight request and forcing retry/recovery. This
  quantifies the countermeasure gap §VII calls out;
* **original / free-riders**: the baseline leans on its adversary-free
  (but slow) pull phase.

Dissemination completes in every scenario.
"""

from benchmarks.conftest import run_once
from repro.experiments.builders import build_network
from repro.experiments.dissemination import DisseminationConfig, DisseminationResult
from repro.experiments.workloads import synthetic_block_transactions
from repro.fabric.config import PeerConfig, ValidationMode
from repro.faults.injectors import SilentPeerFault, TeasingPeerFault
from repro.gossip.config import EnhancedGossipConfig, OriginalGossipConfig
from repro.metrics.probability_plot import tail_latency
from repro.metrics.report import format_table


def _run(gossip, full: bool, seed: int, fault_class, fraction: float = 0.10):
    blocks = 100 if full else 30
    config = DisseminationConfig(gossip=gossip, blocks=blocks, seed=seed, grace_period=180.0)
    net = build_network(
        n_peers=config.n_peers, gossip=config.gossip, seed=config.seed,
        peer_config=PeerConfig(validation_mode=ValidationMode.DELAY_ONLY),
    )
    adversaries = net.regular_peers()[: int(config.n_peers * fraction)]
    fault_class(net.network, adversaries)
    net.start()
    transactions = synthetic_block_transactions(config.tx_per_block, config.tx_size)
    for index in range(config.blocks):
        net.sim.schedule_at((index + 1) * config.block_period, net.orderer.emit_block, transactions)
    workload_end = config.blocks * config.block_period
    net.run_until(
        lambda: net.sim.now >= workload_end and net.all_peers_received(config.blocks),
        step=1.0, max_time=workload_end + config.grace_period,
    )
    return DisseminationResult(config=config, net=net, duration=net.sim.now, workload_end=workload_end)


def test_ablation_adversarial_peers(benchmark, full_scale):
    def experiment():
        return {
            "enhanced / free-riders": _run(EnhancedGossipConfig.paper_f4(), full_scale, 1, SilentPeerFault),
            "enhanced / teasers": _run(EnhancedGossipConfig.paper_f4(), full_scale, 1, TeasingPeerFault),
            "original / free-riders": _run(OriginalGossipConfig(), full_scale, 1, SilentPeerFault),
        }

    results = run_once(benchmark, experiment)

    rows = []
    for label, result in results.items():
        latencies = result.tracker.all_latencies()
        rows.append([
            label,
            tail_latency(latencies, 0.5),
            tail_latency(latencies, 0.95),
            max(latencies),
            result.pull_usage(),
            result.recovery_usage(),
        ])
    print()
    print(format_table(
        ["scenario", "median (s)", "p95 (s)", "worst (s)", "via pull", "via recovery"],
        rows,
        title="10% adversarial peers at n=100 (paper §VII future work)",
    ))

    free_riders = results["enhanced / free-riders"]
    teasers = results["enhanced / teasers"]
    original = results["original / free-riders"]

    # Everything still completes.
    assert all(result.coverage_complete() for result in results.values())
    # Free-riders barely hurt the enhanced module.
    assert max(free_riders.tracker.all_latencies()) < 1.0
    # Teasers capture in-flight requests: retries/recovery become visible.
    assert max(teasers.tracker.all_latencies()) > max(free_riders.tracker.all_latencies())
    # The original module leans on pull under free-riders.
    assert original.pull_usage() > 0
