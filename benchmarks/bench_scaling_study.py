"""Extension bench (§VII): scaling the organization with table-driven TTLs.

The paper argues epidemic dissemination improves with n (law of large
numbers) and that TTL varies slowly with n (§IV). This bench sweeps the
organization size, letting the TTL lookup table pick parameters for
pe <= 1e-6, and checks: full-block copies stay ~n + o(n); median latency
grows far slower than n (logarithmic epidemic depth).
"""

from benchmarks.conftest import run_once
from repro.experiments.scaling import render_scaling_study, run_scaling_study


def test_scaling_study(benchmark, full_scale):
    sizes = (25, 50, 100, 200) if full_scale else (25, 50, 100)
    blocks = 20 if full_scale else 8

    points = run_once(
        benchmark, lambda: run_scaling_study(sizes=sizes, blocks=blocks, seed=1)
    )
    print()
    print(render_scaling_study(points))

    for point in points:
        assert point.pe_bound <= 1e-6  # table-driven TTL hits the target
        assert 0.9 <= point.pushes_per_peer <= 1.6  # n + o(n) full copies
    smallest, largest = points[0], points[-1]
    size_ratio = largest.n_peers / smallest.n_peers
    latency_ratio = largest.median_latency / smallest.median_latency
    print(f"\nn grew {size_ratio:.0f}x; median latency grew {latency_ratio:.2f}x "
          "(logarithmic epidemic depth)")
    assert latency_ratio < size_ratio / 2