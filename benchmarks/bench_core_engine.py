"""Core-engine benchmark: events/sec of the canonical dissemination run.

Unlike the figure benches, this one measures the *simulator* rather than
the paper: it drives the canonical enhanced-gossip scenario (including the
calibrated background traffic) at a sweep of organization sizes, reports
events/sec, wall time, peak heap size and the batched-vs-naive event
count, and asserts three invariants:

* determinism — the committed golden metrics are reproduced bit-for-bit
  and sit within the PR-1 reference tolerance;
* event reduction — the timer wheel + aggregated background cut at least
  ``EVENT_REDUCTION_FLOOR`` (30%) of the naive engine's events at every
  size (deterministic counts, exact gate);
* throughput — events/sec stays within 20% of the committed
  ``BENCH_core.json`` baseline (the same check ``scripts/perf_gate.py``
  runs standalone).
"""

import json
import os

import pytest

from benchmarks.conftest import run_once
from repro.metrics.report import format_table
from repro.perf import (
    check_determinism,
    check_event_reduction,
    check_reference_tolerance,
    compare_bench,
    run_core_benchmark,
    run_recovery_benchmark,
)
from repro.simulation._core import active_engine

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_core.json")


def test_core_engine(benchmark, full_scale):
    sizes = (50, 100, 250, 500, 1000) if full_scale else (50, 100)

    def measure():
        return (
            run_core_benchmark(sizes=sizes, repeats=2),
            run_recovery_benchmark(repeats=2),
        )

    results, recovery = run_once(benchmark, measure)
    results = list(results) + [recovery]

    print()
    print(
        format_table(
            ["scenario", "n", "TTL", "events", "naive", "reduction", "wall (s)", "events/s", "peak heap"],
            [
                [
                    r.scenario,
                    r.n_peers,
                    r.ttl,
                    r.events,
                    r.naive_events,
                    f"{r.event_reduction:.1%}",
                    f"{r.wall_time_s:.3f}",
                    f"{r.events_per_sec:,.0f}",
                    r.peak_heap_size,
                ]
                for r in results
            ],
            title="Core engine throughput (canonical dissemination + background, crash recovery)",
        )
    )

    mismatches = check_determinism()
    assert not mismatches, f"determinism contract violated: {mismatches}"
    drift = check_reference_tolerance()
    assert not drift, f"golden metrics drifted from the PR-1 reference: {drift}"

    reduction_failures = check_event_reduction(results)
    assert not reduction_failures, (
        f"timer-wheel event reduction below floor: {reduction_failures}"
    )

    with open(BENCH_JSON, encoding="utf-8") as handle:
        committed = json.load(handle)
    committed_engine = committed.get("engine", "pure")
    active = active_engine()
    if committed_engine != active:
        # Cross-engine events/sec is not a regression signal; the
        # determinism and reduction gates above already ran on this engine.
        pytest.skip(
            f"BENCH_core.json was recorded on the {committed_engine!r} engine "
            f"but this run uses {active!r}; throughput comparison skipped "
            "(rewrite the baseline with scripts/perf_gate.py --update)"
        )
    dissemination = [r for r in results if r.scenario == "dissemination"]
    current = {
        "results": [
            {"n_peers": r.n_peers, "events_per_sec": r.events_per_sec}
            for r in dissemination
        ],
        "recovery_results": [
            {"n_peers": r.n_peers, "events_per_sec": r.events_per_sec}
            for r in results
            if r.scenario == "recovery"
        ],
    }
    committed["results"] = [
        point for point in committed["results"]
        if point["n_peers"] in {r.n_peers for r in dissemination}
    ]
    failures = compare_bench(current, committed, threshold=0.20)
    assert not failures, f"throughput regression vs BENCH_core.json: {failures}"
