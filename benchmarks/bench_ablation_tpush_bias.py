"""Ablation (§IV): the t_push buffer bias in the enhanced protocol.

The paper sets t_push = 0 for data blocks because Fabric's 10 ms buffer
merges pairs of the same block with different counters "and transmit[s]
them to the same fout peers, reducing the number of messages, which
increases the probability of imperfect dissemination above the theoretical
guarantees".

The bias is *target correlation*: buffered pairs share one random target
sample instead of drawing an independent sample each. This bench
instruments every forward and measures the fraction of pair forwards that
reuse the preceding forward's exact target set for the same block at the
same peer — near zero with t_push = 0, substantial with the buffer on.
"""

from collections import defaultdict

from benchmarks.conftest import run_once
from repro.experiments.dissemination import DisseminationConfig
from repro.gossip.config import EnhancedGossipConfig


def _run_instrumented(t_push: float, full: bool, seed: int):
    gossip = EnhancedGossipConfig.paper_f4()
    gossip.t_push = t_push
    blocks = 100 if full else 20
    config = DisseminationConfig(gossip=gossip, blocks=blocks, seed=seed)

    from repro.experiments.builders import build_network
    from repro.experiments.workloads import synthetic_block_transactions
    from repro.fabric.config import PeerConfig, ValidationMode
    from repro.experiments.dissemination import DisseminationResult

    net = build_network(
        n_peers=config.n_peers, gossip=config.gossip, seed=config.seed,
        peer_config=PeerConfig(validation_mode=ValidationMode.DELAY_ONLY),
    )
    # Instrument every peer's push component: record target sets per
    # (peer, block) in forward order.
    samples = defaultdict(list)
    for name, peer in net.peers.items():
        def on_forward(number, counter, targets, peer_name=name):
            samples[(peer_name, number)].append(frozenset(targets))

        peer.gossip.push._on_forward = on_forward
    net.start()
    transactions = synthetic_block_transactions(config.tx_per_block, config.tx_size)
    for index in range(config.blocks):
        net.sim.schedule_at((index + 1) * config.block_period, net.orderer.emit_block, transactions)
    workload_end = config.blocks * config.block_period
    net.run_until(
        lambda: net.sim.now >= workload_end and net.all_peers_received(config.blocks),
        step=1.0, max_time=workload_end + 60.0,
    )
    result = DisseminationResult(config=config, net=net, duration=net.sim.now, workload_end=workload_end)
    return result, samples


def _reuse_fraction(samples) -> float:
    reused = 0
    total = 0
    for target_sets in samples.values():
        for previous, current in zip(target_sets, target_sets[1:]):
            total += 1
            if previous == current:
                reused += 1
    return reused / total if total else 0.0


def test_ablation_tpush_bias(benchmark, full_scale):
    def experiment():
        unbiased = _run_instrumented(0.0, full_scale, seed=1)
        buffered = _run_instrumented(0.010, full_scale, seed=1)
        return unbiased, buffered

    (unbiased, samples_unbiased), (buffered, samples_buffered) = run_once(benchmark, experiment)

    reuse_unbiased = _reuse_fraction(samples_unbiased)
    reuse_buffered = _reuse_fraction(samples_buffered)
    print("\nconsecutive same-block forwards reusing the SAME target sample:")
    print(f"  t_push = 0    : {reuse_unbiased * 100:.1f}%  (independent samples, as the analysis assumes)")
    print(f"  t_push = 10 ms: {reuse_buffered * 100:.1f}%  (buffer merges pairs into one sample)")

    assert unbiased.coverage_complete()
    assert buffered.coverage_complete()
    assert reuse_unbiased < 0.05
    assert reuse_buffered > 0.25
