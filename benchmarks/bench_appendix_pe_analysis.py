"""Appendix / §IV: pe targets, TTL selection and the TTL lookup table.

Paper claims verified:
* (fout=4, TTL=9)  → pe ≤ 1e-6 at n=100;
* (fout=2, TTL=19) → pe ≤ 1e-6 at n=100;
* (fout=4, TTL=12) → pe ≤ 1e-12 at n=100;
* TTL varies slowly with n, so a small (n, pe) lookup table suffices;
* the pair epidemic empirically reaches all peers (Monte Carlo).
"""

import random

from benchmarks.conftest import run_once
from repro.analysis.montecarlo import simulate_infect_upon_contagion
from repro.analysis.pe import imperfect_dissemination_probability, ttl_for_target
from repro.analysis.ttl_table import TTLTable
from repro.metrics.report import format_table


def test_appendix_pe_analysis(benchmark, full_scale):
    runs = 3_000 if full_scale else 500

    def experiment():
        table = TTLTable(fout=4)
        mc_f4 = simulate_infect_upon_contagion(100, 4, ttl=9, runs=runs, rng=random.Random(1))
        mc_f2 = simulate_infect_upon_contagion(100, 2, ttl=19, runs=runs, rng=random.Random(2))
        return table, mc_f4, mc_f2

    table, mc_f4, mc_f2 = run_once(benchmark, experiment)

    rows = [
        [
            "fout=4, TTL=9", "1e-6",
            f"{imperfect_dissemination_probability(100, 4, 9):.2e}",
            ttl_for_target(100, 4, 1e-6),
        ],
        [
            "fout=2, TTL=19", "1e-6",
            f"{imperfect_dissemination_probability(100, 2, 19):.2e}",
            ttl_for_target(100, 2, 1e-6),
        ],
        [
            "fout=4, TTL=12", "1e-12",
            f"{imperfect_dissemination_probability(100, 4, 12):.2e}",
            ttl_for_target(100, 4, 1e-12),
        ],
    ]
    print()
    print(format_table(["configuration", "paper pe", "computed pe bound", "minimal TTL"], rows,
                       title="pe analysis at n=100 (paper §IV / appendix)"))
    print()
    table_rows = [
        [n] + [entries[pe] for pe in table.pe_targets]
        for n, entries in table.rows()
    ]
    print(format_table(
        ["n"] + [f"TTL @ pe={pe:g}" for pe in table.pe_targets],
        table_rows,
        title="(n, pe) -> TTL lookup table, fout=4 (paper §IV)",
    ))

    assert ttl_for_target(100, 4, 1e-6) == 9
    assert ttl_for_target(100, 2, 1e-6) == 19
    assert ttl_for_target(100, 4, 1e-12) == 12
    assert mc_f4.full_coverage_fraction == 1.0
    assert mc_f2.full_coverage_fraction == 1.0
