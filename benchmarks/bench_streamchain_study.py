"""Extension bench (§VII): StreamChain-style ordering vs blocks.

The paper's discussion anticipates that replacing blocks with a stream of
individually ordered transactions would "put a stronger emphasis on the
impact of gossip". Measured here: under streaming, the enhanced module
slashes end-to-end commit latency (no batch wait, sub-second gossip) while
the original module's bounded pull window falls behind the block rate and
commit latency *regresses* past block-based ordering.
"""

from benchmarks.conftest import run_once
from repro.experiments.streamchain import render_streamchain_study, run_streamchain_study


def test_streamchain_study(benchmark, full_scale):
    n_peers = 100 if full_scale else 30
    transactions = 300 if full_scale else 80

    results = run_once(
        benchmark,
        lambda: run_streamchain_study(n_peers=n_peers, transactions=transactions, seed=1),
    )
    print()
    print(render_streamchain_study(results))

    by_key = {(r.ordering, "Original" in r.gossip): r for r in results}
    stream_enhanced = by_key[("stream", False)]
    stream_original = by_key[("stream", True)]
    blocks_enhanced = by_key[("blocks", False)]

    assert stream_enhanced.commit_latency.p50 < 0.5 * blocks_enhanced.commit_latency.p50
    assert stream_original.commit_latency.p50 > stream_enhanced.commit_latency.p50 * 5
