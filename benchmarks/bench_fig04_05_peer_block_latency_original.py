"""Figures 4 & 5: dissemination latency with the ORIGINAL Fabric gossip.

Fig. 4 — latency at the peer level (fastest/median/slowest peers);
Fig. 5 — latency at the block level (fastest/median/slowest blocks).
Paper behaviour to reproduce: logistic-looking fast phase followed by a fat
tail — the last ~5% of receptions take one to several seconds (pull phase).
"""

from benchmarks._render import latency_figure_rows, summary_lines
from benchmarks.conftest import run_once
from repro.experiments.dissemination import run_dissemination
from repro.experiments.figures import block_level_figure, figure_config, peer_level_figure
from repro.metrics.probability_plot import tail_latency


def test_fig4_fig5_original_latency(benchmark, full_scale):
    result = run_once(
        benchmark, lambda: run_dissemination(figure_config("fig4", full=full_scale, seed=1))
    )
    assert result.coverage_complete()

    fig4 = peer_level_figure(result, "Figure 4 (original, peer level)")
    fig5 = block_level_figure(result, "Figure 5 (original, block level)")
    print()
    print(latency_figure_rows(fig4))
    print()
    print(latency_figure_rows(fig5))
    latencies = result.tracker.all_latencies()
    print()
    print(
        summary_lines(
            "Original gossip dissemination",
            {
                "p95 latency (s)": f"{tail_latency(latencies, 0.95):.3f}",
                "worst latency (s)": f"{max(latencies):.3f}",
                "blocks obtained via pull": result.pull_usage(),
                "blocks obtained via recovery": result.recovery_usage(),
            },
        )
    )
    # Paper shape: the tail (last 5%) is dominated by the pull period —
    # one to several seconds, far above the sub-second push phase.
    assert tail_latency(latencies, 0.5) < 0.5
    assert max(latencies) > 1.0
    assert result.pull_usage() > 0
