#!/usr/bin/env python
"""Compare two scenario snapshot JSON files for bit-for-bit equality.

Usage::

    python scripts/diff_snapshots.py a.json b.json [--ignore KEY ...]

Exits 0 when the snapshots match on every key except the ignored ones
(default: ``events_executed``, the documented shard-variant key — exact
tie grouping is shard-local, see docs/sharding.md — ``run_health``, the
wall-clock supervision ledger ``run --json`` embeds, and ``runtime``, the
engine-core stamp: pure and compiled runs produce identical physics, so
the stamp is metadata, not a metric), 1 with a readable per-key diff
otherwise. The CI adversarial-determinism job uses this to assert that a
byzantine/churn scenario's snapshot is identical whether the simulation
ran in one process or partitioned across shard workers.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_IGNORED = ("events_executed", "run_health", "runtime")


def diff_snapshots(a: dict, b: dict, ignored: frozenset) -> list:
    """Human-readable mismatch lines between two snapshot dicts."""
    lines = []
    for key in sorted(set(a) | set(b)):
        if key in ignored:
            continue
        left, right = a.get(key, "<missing>"), b.get(key, "<missing>")
        if left != right:
            lines.append(f"{key}: {left!r} != {right!r}")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("left")
    parser.add_argument("right")
    parser.add_argument(
        "--ignore",
        nargs="*",
        default=list(DEFAULT_IGNORED),
        help="top-level keys excluded from the comparison",
    )
    args = parser.parse_args(argv)
    with open(args.left) as handle:
        a = json.load(handle)
    with open(args.right) as handle:
        b = json.load(handle)
    mismatches = diff_snapshots(a, b, frozenset(args.ignore))
    if mismatches:
        print(f"{args.left} != {args.right}:", file=sys.stderr)
        for line in mismatches:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"snapshots match ({len(set(a) - set(args.ignore))} keys compared)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
