#!/usr/bin/env python
"""Perf-regression gate for the simulation core.

Runs the canonical core benchmark (dissemination workload plus calibrated
background traffic), checks the determinism contract, asserts the
timer-wheel/aggregation event-count reduction, and compares events/sec
against the committed ``BENCH_core.json``. Exits non-zero when metrics
diverge from the golden values, the reduction falls below the floor, or
throughput drops more than the threshold at any measured size.

Usage::

    PYTHONPATH=src python scripts/perf_gate.py                # full gate
    PYTHONPATH=src python scripts/perf_gate.py --update       # refresh baselines
    PYTHONPATH=src python scripts/perf_gate.py --update-goldens-only  # goldens only
    PYTHONPATH=src python scripts/perf_gate.py --determinism-only   # CI mode
    PYTHONPATH=src python scripts/perf_gate.py --determinism-only --shards 4
    PYTHONPATH=src python scripts/perf_gate.py --determinism-only --engine compiled
    PYTHONPATH=src python scripts/perf_gate.py --threshold 0.3
    PYTHONPATH=src python scripts/perf_gate.py --sizes 50,100 --skip-determinism

``--determinism-only --shards N`` replays every golden scenario
process-sharded across N workers and fails on any divergence from the
committed goldens (every metric except the engine-internal
``events_executed``, which legitimately depends on the shard count — see
docs/sharding.md). ``--diff-output PATH`` writes any golden-vs-actual
mismatches as JSON so CI can upload them as a debugging artifact.

``--update-goldens-only`` refreshes ``golden_metrics.json`` without
re-measuring throughput: on a noisy machine a legitimate golden refresh
must not rewrite ``BENCH_core.json`` with garbage events/sec points.

CI runs ``--determinism-only``: the bit-for-bit golden replay is
machine-independent, while events/sec on shared runners is noise — the
throughput comparison is meaningful only on a quiet, consistent machine.

Engine selection
----------------

``--engine {auto,pure,compiled}`` picks the engine core for the whole run
(it sets ``REPRO_ENGINE`` before anything imports the simulator; see
docs/performance.md). ``compiled`` fails fast when the mypyc extension is
not built — never a silent fallback. Every run banners the active engine,
every bench row is stamped with it, and the gate **refuses** to compare
events/sec against a baseline recorded under a different engine: a 2x
compiled speedup must never be read as a 2x pure regression (or vice
versa). Crossing engines is exactly what ``--update`` is for — it rewrites
the baseline with the new engine stamp, loudly.

When is ``--update`` legitimate?
--------------------------------

``--update`` rewrites **both** committed baselines: the events/sec points
in ``BENCH_core.json`` and the bit-for-bit goldens in
``src/repro/perf/golden_metrics.json``. Refreshing them is the *expected*
final step of a change that intentionally alters event interleaving or
cost — a scheduler refactor that reorders same-instant events, an
event-count optimization like the timer wheel, a deliberate scenario
change, or switching the recorded engine (pure -> compiled) on a machine
where the compiled numbers are the ones future gates should defend. It is
**masking a regression** when used to silence a gate failure whose diff
you cannot explain: goldens that moved without an intentional
interleaving change mean the engine stopped being deterministic, and an
events/sec drop without a corresponding scenario/feature cost means the
hot path got slower.

Two guardrails enforce the distinction. First, ``--update`` re-validates
the freshly captured goldens against the frozen PR-1 reference metrics
(``repro.perf.regression.PR1_REFERENCE_METRICS``) and *refuses to write*
if latency/byte figures drifted beyond tolerance — interleaving may
change, physics may not. Second, the update is loud: commit the refreshed
JSON together with the change that explains it, and state the reason in
the commit message. If you cannot name the mechanism that moved the
numbers, do not update — bisect.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_core.json")


def _print_results(results) -> None:
    for result in results:
        reduction = (
            f"{result.event_reduction:>6.1%} fewer events"
            if result.event_reduction is not None
            else "reduction not measured"
        )
        label = "" if result.scenario == "dissemination" else f" [{result.scenario}]"
        print(
            f"n={result.n_peers:>4}{label}  {result.events_per_sec:>12,.0f} events/s"
            f"  (events={result.events}, naive={result.naive_events},"
            f" {reduction}, peak heap={result.peak_heap_size})"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, help="committed BENCH_core.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional events/sec drop (default 0.20)")
    parser.add_argument("--reduction-floor", type=float, default=None,
                        help="required batched-vs-naive event reduction "
                             "(default: repro.perf.EVENT_REDUCTION_FLOOR)")
    parser.add_argument("--sizes", default=None,
                        help="comma-separated organization sizes (default: the baseline's)")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats per size")
    parser.add_argument("--engine", choices=("auto", "pure", "compiled"), default="auto",
                        help="engine core to run on: 'pure' forces the Python twin, "
                             "'compiled' requires the mypyc extension (no silent "
                             "fallback), 'auto' (default) prefers the extension when "
                             "built. Sets REPRO_ENGINE for this process")
    parser.add_argument("--update", action="store_true",
                        help="rewrite BENCH_core.json and golden_metrics.json with this "
                             "run instead of gating (see module docstring for when this "
                             "is legitimate)")
    parser.add_argument("--update-goldens-only", action="store_true",
                        help="refresh golden_metrics.json (with the PR-1 tolerance "
                             "guardrail) without re-measuring throughput — the right "
                             "refresh on a noisy machine, where --update would rewrite "
                             "BENCH_core.json with garbage events/sec")
    parser.add_argument("--skip-determinism", action="store_true",
                        help="skip the golden-metric determinism check")
    parser.add_argument("--determinism-only", action="store_true",
                        help="run only the machine-independent checks (golden replay + "
                             "PR-1 tolerance + event reduction); skip the events/sec "
                             "comparison — the CI mode for shared runners")
    parser.add_argument("--shards", type=int, default=1,
                        help="replay the goldens process-sharded across N workers "
                             "(requires --determinism-only); the merged run must "
                             "reproduce every golden metric except events_executed")
    parser.add_argument("--shard-mode", choices=("auto", "processes", "inline"),
                        default="auto", help="shard execution mode for --shards")
    parser.add_argument("--diff-output", default=None, metavar="PATH",
                        help="write golden-vs-actual mismatches as JSON to PATH on "
                             "determinism failure (CI uploads it as an artifact)")
    parser.add_argument("--shard-bench", action="store_true",
                        help="with --update: re-measure the 10k-peer shard-scaling "
                             "section (several minutes; each worker rebuilds the full "
                             "deployment). Without it, --update carries the committed "
                             "section forward unchanged")
    args = parser.parse_args(argv)

    if args.update and args.determinism_only:
        parser.error(
            "--update with --determinism-only would shrink BENCH_core.json "
            "to the single CI-mode size; run --update without it"
        )
    if args.update and args.update_goldens_only:
        parser.error("--update already refreshes the goldens; drop one of the flags")
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.shards > 1 and not args.determinism_only:
        parser.error("--shards requires --determinism-only (the sharded gate "
                     "replays goldens; throughput is measured single-process)")
    if args.shard_bench and not args.update:
        parser.error("--shard-bench only applies with --update (it re-measures "
                     "the committed shard-scaling section)")

    # Engine selection happens at import time (repro.simulation._core reads
    # REPRO_ENGINE once), so the flag must land in the environment before
    # any repro import — which is why every repro import below sits inside
    # main(), after argument parsing.
    if args.engine != "auto":
        os.environ["REPRO_ENGINE"] = args.engine
    try:
        from repro.simulation._core import core_info
    except (ImportError, ValueError) as error:
        print(f"ENGINE SELECTION FAILED: {error}")
        return 1
    info = core_info()
    engine = info["engine"]
    print(f"engine: {engine} ({info['module']})")

    from repro.perf import (
        EVENT_REDUCTION_FLOOR,
        check_determinism,
        check_event_reduction,
        check_reference_tolerance,
        check_sharded_determinism,
        compare_bench,
        run_congestion_benchmark,
        run_core_benchmark,
        run_recovery_benchmark,
        run_shard_scaling_benchmark,
        run_sweep_benchmark,
        update_golden,
        write_bench_json,
    )

    reduction_floor = (
        EVENT_REDUCTION_FLOOR if args.reduction_floor is None else args.reduction_floor
    )

    if args.update_goldens_only:
        try:
            golden = update_golden()
        except ValueError as error:
            print(f"GOLDEN UPDATE REFUSED: {error}")
            return 1
        print(f"golden metrics updated ({len(golden)} scenarios): "
              "src/repro/perf/golden_metrics.json (BENCH_core.json untouched)")
        return 0

    def report_failure(header, lines, diff):
        print(header)
        for line in lines:
            print(f"  - {line}")
        if args.diff_output and diff:
            with open(args.diff_output, "w", encoding="utf-8") as handle:
                json.dump({"failures": diff}, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"diff written to {args.diff_output}")

    if args.shards > 1:
        diff = []
        mismatches = check_sharded_determinism(
            shards=args.shards, mode=args.shard_mode, diff=diff
        )
        if mismatches:
            report_failure(
                f"sharded determinism contract VIOLATED (shards={args.shards}):",
                mismatches, diff,
            )
            return 1
        print("sharded determinism: OK (golden metrics reproduced bit-for-bit "
              f"across {args.shards} shard workers, events_executed excluded)")
        return 0

    if args.update:
        pass  # all writes happen after every failable gate below has run
    elif not args.skip_determinism:
        diff = []
        mismatches = check_determinism(diff=diff)
        if mismatches:
            report_failure("determinism contract VIOLATED:", mismatches, diff)
            return 1
        drift = check_reference_tolerance()
        if drift:
            print("golden metrics out of tolerance vs the PR-1 reference:")
            for line in drift:
                print(f"  - {line}")
            return 1
        print("determinism: OK (golden metrics reproduced bit-for-bit, "
              "within PR-1 reference tolerance)")

    if args.sizes is not None:
        try:
            sizes = tuple(int(part) for part in args.sizes.split(","))
        except ValueError:
            parser.error(f"--sizes expects comma-separated integers, got {args.sizes!r}")
    elif args.determinism_only:
        sizes = (50,)  # one cheap point just to exercise the reduction gate
    elif args.update:
        # A refresh re-measures the harness's full matrix, so newly added
        # sizes land in the baseline instead of inheriting the old sweep.
        from repro.perf.profile import BENCH_SIZES

        sizes = BENCH_SIZES
    elif os.path.exists(args.baseline):
        with open(args.baseline, encoding="utf-8") as handle:
            sizes = tuple(
                point["n_peers"] for point in json.load(handle).get("results", [])
            )
    else:
        from repro.perf.profile import BENCH_SIZES

        sizes = BENCH_SIZES

    repeats = 1 if args.determinism_only else args.repeats
    results = run_core_benchmark(sizes=sizes, repeats=repeats)
    recovery_results = []
    if not args.determinism_only:
        # The crash-fault recovery scenario rides along in full runs so the
        # gate covers the fault-active (guarded multicast) code paths too.
        recovery_results = [run_recovery_benchmark(repeats=repeats)]
    _print_results(list(results) + recovery_results)

    reduction_failures = check_event_reduction(
        list(results) + recovery_results, floor=reduction_floor
    )
    if reduction_failures:
        print("EVENT-REDUCTION GATE FAILED:")
        for line in reduction_failures:
            print(f"  - {line}")
        return 1

    if args.update:
        # The reduction gate above already passed; update_golden validates
        # the PR-1 tolerance before touching the file, so either both
        # baselines are rewritten or neither is.
        if args.sizes is not None:
            print(
                "WARNING: --update with --sizes rewrites BENCH_core.json with "
                f"ONLY n={sizes}; future gate runs derive their sweep from the "
                "baseline, so coverage of the other sizes is dropped"
            )
        committed_engine = None
        if os.path.exists(args.baseline):
            with open(args.baseline, encoding="utf-8") as handle:
                committed_engine = json.load(handle).get("engine", "pure")
        if committed_engine is not None and committed_engine != engine:
            print(
                f"NOTE: baseline engine switches {committed_engine!r} -> "
                f"{engine!r}; future gate runs will defend the {engine} "
                "numbers (see docs/performance.md)"
            )
        try:
            golden = update_golden()
        except ValueError as error:
            print(f"GOLDEN UPDATE REFUSED: {error}")
            return 1
        print(f"golden metrics updated ({len(golden)} scenarios): "
              "src/repro/perf/golden_metrics.json")
        # Campaign throughput rides along in the refreshed baseline. The
        # parallel speedup is machine-dependent, so it is recorded for the
        # trajectory but never gated.
        sweep_result = run_sweep_benchmark()
        print(
            f"sweep [{sweep_result.scenario}] {sweep_result.seeds} seeds: "
            f"jobs=1 {sweep_result.wall_jobs1_s:.2f}s, "
            f"jobs={sweep_result.jobs} {sweep_result.wall_jobsN_s:.2f}s "
            f"({sweep_result.parallel_speedup:.2f}x, merged reports identical)"
        )
        baseline_eps = None
        shard_scaling = None
        if os.path.exists(args.baseline):
            with open(args.baseline, encoding="utf-8") as handle:
                committed = json.load(handle)
            baseline_eps = committed.get("baseline_events_per_sec")
            shard_scaling = committed.get("shard_scaling")
        if args.shard_bench:
            from dataclasses import asdict

            scaling_result = run_shard_scaling_benchmark()
            shard_scaling = asdict(scaling_result)
            for point in scaling_result.points:
                print(
                    f"shard-scaling n={scaling_result.n_peers} "
                    f"shards={point['shards']}: {point['events_per_sec']:,.0f} "
                    f"events/s (wall {point['wall_time_s']:.1f}s, merged "
                    "snapshot identical)"
                )
        elif shard_scaling is not None:
            print("shard-scaling section carried forward (re-measure with --shard-bench)")
        # Deterministic link physics, cheap to re-measure on every update
        # (never carried forward: the rows must match the current code).
        congestion = run_congestion_benchmark()
        for row in congestion["rows"]:
            print(
                f"congestion [{row['gossip']}] block={row['block_bytes']:,}B: "
                f"queue_delay={row['queue_delay_total_s']:.2f}s "
                f"drops={row['dropped_tail'] + row['dropped_codel']} "
                f"p95={row['latency_p95_s']:.3f}s"
            )
        write_bench_json(
            results,
            args.baseline,
            baseline_events_per_sec=baseline_eps and {
                int(n): eps for n, eps in baseline_eps.items()
            },
            recovery_results=recovery_results,
            sweep_result=sweep_result,
            shard_scaling=shard_scaling,
            congestion=congestion,
        )
        print(f"baseline updated: {args.baseline} (engine={engine})")
        return 0

    if args.determinism_only:
        print("determinism-only gate passed (event reduction >= "
              f"{reduction_floor:.0%} at n={sizes})")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update to create one")
        return 1
    with open(args.baseline, encoding="utf-8") as handle:
        committed = json.load(handle)
    committed_engine = committed.get("engine", "pure")
    if committed_engine != engine:
        print(
            f"PERF GATE REFUSED: baseline {args.baseline} was recorded on the "
            f"{committed_engine!r} engine but this run uses {engine!r} — "
            "events/sec across engines is not a regression signal. Re-run "
            f"with --engine {committed_engine}, or rewrite the baseline "
            "explicitly with --update (see docs/performance.md)"
        )
        return 1
    current = {
        "results": [
            {"n_peers": result.n_peers, "events_per_sec": result.events_per_sec}
            for result in results
        ],
        "recovery_results": [
            {"n_peers": result.n_peers, "events_per_sec": result.events_per_sec}
            for result in recovery_results
        ],
    }
    committed["results"] = [
        point for point in committed["results"] if point["n_peers"] in set(sizes)
    ]
    failures = compare_bench(current, committed, threshold=args.threshold)
    if failures:
        print("PERF GATE FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"perf gate passed (threshold {args.threshold:.0%}, "
          f"event reduction >= {reduction_floor:.0%}, engine={engine})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
