#!/usr/bin/env python
"""Perf-regression gate for the simulation core.

Runs the canonical core benchmark, checks the determinism contract, and
compares events/sec against the committed ``BENCH_core.json``. Exits
non-zero when metrics diverge from the golden values or throughput drops
more than the threshold at any measured size.

Usage::

    PYTHONPATH=src python scripts/perf_gate.py                # gate
    PYTHONPATH=src python scripts/perf_gate.py --update       # refresh baseline
    PYTHONPATH=src python scripts/perf_gate.py --threshold 0.3
    PYTHONPATH=src python scripts/perf_gate.py --sizes 50,100 --skip-determinism
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.perf import (  # noqa: E402 (path bootstrap above)
    check_determinism,
    compare_bench,
    run_core_benchmark,
    write_bench_json,
)

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_core.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, help="committed BENCH_core.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional events/sec drop (default 0.20)")
    parser.add_argument("--sizes", default=None,
                        help="comma-separated organization sizes (default: the baseline's)")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats per size")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline with this run instead of gating")
    parser.add_argument("--skip-determinism", action="store_true",
                        help="skip the golden-metric determinism check")
    args = parser.parse_args(argv)

    if not args.skip_determinism:
        mismatches = check_determinism()
        if mismatches:
            print("determinism contract VIOLATED:")
            for line in mismatches:
                print(f"  - {line}")
            return 1
        print("determinism: OK (golden metrics reproduced bit-for-bit)")

    if args.sizes is not None:
        try:
            sizes = tuple(int(part) for part in args.sizes.split(","))
        except ValueError:
            parser.error(f"--sizes expects comma-separated integers, got {args.sizes!r}")
    elif os.path.exists(args.baseline):
        with open(args.baseline, encoding="utf-8") as handle:
            sizes = tuple(
                point["n_peers"] for point in json.load(handle).get("results", [])
            )
    else:
        sizes = (50, 100, 250, 500)

    results = run_core_benchmark(sizes=sizes, repeats=args.repeats)
    for result in results:
        print(
            f"n={result.n_peers:>4}  {result.events_per_sec:>12,.0f} events/s"
            f"  (events={result.events}, peak heap={result.peak_heap_size})"
        )

    if args.update:
        baseline_eps = None
        if os.path.exists(args.baseline):
            with open(args.baseline, encoding="utf-8") as handle:
                baseline_eps = json.load(handle).get("baseline_events_per_sec")
        write_bench_json(
            results,
            args.baseline,
            baseline_events_per_sec=baseline_eps and {
                int(n): eps for n, eps in baseline_eps.items()
            },
        )
        print(f"baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update to create one")
        return 1
    with open(args.baseline, encoding="utf-8") as handle:
        committed = json.load(handle)
    current = {
        "results": [
            {"n_peers": result.n_peers, "events_per_sec": result.events_per_sec}
            for result in results
        ]
    }
    committed["results"] = [
        point for point in committed["results"] if point["n_peers"] in set(sizes)
    ]
    failures = compare_bench(current, committed, threshold=args.threshold)
    if failures:
        print("PERF GATE FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"perf gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
